#include "ota/image.h"

#include "ota/crc32.h"

namespace harbor::ota {

namespace {

void push_u16(std::vector<std::uint16_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint16_t>(v & 0xFFFF));
}

/// Cursor over the payload with hard bounds checking: any read past the end
/// poisons the parse instead of fabricating zeros.
struct Reader {
  std::span<const std::uint16_t> words;
  std::size_t pos = 0;
  bool ok = true;

  std::uint16_t u16() {
    if (pos >= words.size()) {
      ok = false;
      return 0;
    }
    return words[pos++];
  }
  bool has(std::size_t n) const { return pos + n <= words.size(); }
};

}  // namespace

std::vector<std::uint16_t> serialize_image(const sos::ModuleImage& image) {
  std::vector<std::uint16_t> payload;
  push_u16(payload, static_cast<std::uint32_t>(image.name.size()));
  for (std::size_t i = 0; i < image.name.size(); i += 2) {
    std::uint16_t w = static_cast<std::uint8_t>(image.name[i]);
    if (i + 1 < image.name.size())
      w |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(image.name[i + 1]) << 8);
    payload.push_back(w);
  }
  push_u16(payload, image.state_size);
  push_u16(payload, static_cast<std::uint32_t>(image.exports.size()));
  for (const sos::Export& e : image.exports) {
    push_u16(payload, e.slot);
    push_u16(payload, e.offset);
  }
  push_u16(payload, static_cast<std::uint32_t>(image.extra_entries.size()));
  for (const std::uint32_t off : image.extra_entries) push_u16(payload, off);
  push_u16(payload, static_cast<std::uint32_t>(image.code_ptr_relocs.size()));
  for (const std::uint32_t off : image.code_ptr_relocs) push_u16(payload, off);
  push_u16(payload, static_cast<std::uint32_t>(image.state_relocs.size()));
  for (const std::uint32_t off : image.state_relocs) push_u16(payload, off);
  push_u16(payload, static_cast<std::uint32_t>(image.code.size()));
  for (const std::uint16_t w : image.code) payload.push_back(w);

  const std::uint32_t crc = crc32_words(payload);
  std::vector<std::uint16_t> out;
  out.reserve(kImageHeaderWords + payload.size());
  out.push_back(kImageMagic);
  push_u16(out, static_cast<std::uint32_t>(payload.size()) & 0xFFFF);
  push_u16(out, static_cast<std::uint32_t>(payload.size()) >> 16);
  push_u16(out, crc & 0xFFFF);
  push_u16(out, crc >> 16);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::uint32_t image_size_words(std::span<const std::uint16_t> words) {
  if (words.size() < kImageHeaderWords || words[0] != kImageMagic) return 0;
  const std::uint32_t payload_words =
      words[1] | (static_cast<std::uint32_t>(words[2]) << 16);
  return kImageHeaderWords + payload_words;
}

bool image_valid(std::span<const std::uint16_t> words) {
  const std::uint32_t total = image_size_words(words);
  if (total == 0 || total > words.size()) return false;
  const std::uint32_t want_crc =
      words[3] | (static_cast<std::uint32_t>(words[4]) << 16);
  return crc32_words(words.subspan(kImageHeaderWords, total - kImageHeaderWords)) ==
         want_crc;
}

std::optional<sos::ModuleImage> deserialize_image(std::span<const std::uint16_t> words) {
  if (!image_valid(words)) return std::nullopt;
  const std::uint32_t total = image_size_words(words);
  Reader r{words.subspan(kImageHeaderWords, total - kImageHeaderWords)};

  sos::ModuleImage img;
  const std::uint16_t name_len = r.u16();
  const std::size_t name_words = (static_cast<std::size_t>(name_len) + 1) / 2;
  if (!r.has(name_words)) return std::nullopt;
  for (std::uint16_t i = 0; i < name_len; i += 2) {
    const std::uint16_t w = r.u16();
    img.name.push_back(static_cast<char>(w & 0xff));
    if (i + 1 < name_len) img.name.push_back(static_cast<char>(w >> 8));
  }
  img.state_size = r.u16();

  const std::uint16_t n_exports = r.u16();
  if (!r.has(static_cast<std::size_t>(n_exports) * 2)) return std::nullopt;
  for (std::uint16_t i = 0; i < n_exports; ++i) {
    sos::Export e;
    e.slot = r.u16();
    e.offset = r.u16();
    img.exports.push_back(e);
  }
  const std::uint16_t n_extras = r.u16();
  if (!r.has(n_extras)) return std::nullopt;
  for (std::uint16_t i = 0; i < n_extras; ++i) img.extra_entries.push_back(r.u16());
  const std::uint16_t n_relocs = r.u16();
  if (!r.has(n_relocs)) return std::nullopt;
  for (std::uint16_t i = 0; i < n_relocs; ++i) img.code_ptr_relocs.push_back(r.u16());
  const std::uint16_t n_state_relocs = r.u16();
  if (!r.has(n_state_relocs)) return std::nullopt;
  for (std::uint16_t i = 0; i < n_state_relocs; ++i) img.state_relocs.push_back(r.u16());
  const std::uint16_t n_code = r.u16();
  if (!r.has(n_code)) return std::nullopt;
  for (std::uint16_t i = 0; i < n_code; ++i) img.code.push_back(r.u16());

  if (!r.ok || r.pos != r.words.size()) return std::nullopt;
  return img;
}

}  // namespace harbor::ota
