#pragma once
// Flash device model for the OTA module store (DESIGN.md §11, §15).
//
// NOR-style semantics: an erase sets every word of a page to 0xFFFF, and a
// program can only clear bits (1 -> 0) — the device ANDs the new value into
// the cell. Programming a word whose cleared bits would need to be set again
// is a program-without-erase violation: the model applies the AND anyway (as
// the real part does) and reports it. Every page keeps an erase-cycle wear
// counter.
//
// Power-cut injection: set_cut_at(n) makes the n-th subsequent program or
// erase operation tear — a torn program clears only a seeded subset of the
// bits it should, a torn erase blanks only a prefix of the page — after
// which the device is powered off: every further operation fails with
// PoweredOff and changes nothing. power_cycle() brings it back with the torn
// contents and wear counters intact, modelling a reboot after a brown-out.
// The whole model is deterministic in (config, seed, operation sequence),
// which is what lets the power-cut campaign enumerate every boundary.
//
// Erase endurance (DESIGN.md §15): when `nominal_endurance` is non-zero,
// each page draws a per-page erase limit around the nominal value (seeded,
// order-independent). Once a page's wear exceeds its limit the page is
// `bad()`: erases and programs silently inject sticky stuck-at-0 bits — the
// operation still reports Ok, exactly like the real part, and only a
// read-back verify can see the damage. Stuck-bit positions are a pure
// function of (seed, page, word), so faults are deterministic regardless of
// operation ordering, and at least one bit of word 0 is always stuck so an
// erase-verify detects any bad page. With the default nominal_endurance of
// 0 the endurance machinery is fully inert and the model is bit-identical
// to the pre-endurance behaviour (the RNG stream is not consumed).

#include <cstdint>
#include <random>
#include <vector>

namespace harbor::ota {

struct FlashConfig {
  std::uint32_t pages = 32;
  std::uint32_t page_words = 64;  ///< 32 x 64 words = a 4 KB module store
  /// Mean erase-cycle endurance per page; 0 = unlimited (no aging).
  std::uint32_t nominal_endurance = 0;
  /// Per-page limits are drawn uniformly in nominal +/- this percentage.
  std::uint32_t endurance_spread_pct = 15;
};

enum class FlashStatus : std::uint8_t {
  Ok,
  OutOfRange,
  ProgramWithoutErase,  ///< program needed a cleared bit set again
  PowerCut,             ///< this operation tore: the device just browned out
  PoweredOff,           ///< device is down; the operation had no effect
};

const char* flash_status_name(FlashStatus s);

class FlashModel {
 public:
  explicit FlashModel(FlashConfig cfg = {}, std::uint64_t seed = 1);

  [[nodiscard]] std::uint32_t pages() const { return cfg_.pages; }
  [[nodiscard]] std::uint32_t page_words() const { return cfg_.page_words; }
  [[nodiscard]] std::uint32_t size_words() const { return cfg_.pages * cfg_.page_words; }

  FlashStatus program_word(std::uint32_t waddr, std::uint16_t value);
  FlashStatus erase_page(std::uint32_t page);
  /// Reads are unconditional: a powered-off device reads as whatever the
  /// cells held when it died (the next boot sees exactly that).
  [[nodiscard]] std::uint16_t read_word(std::uint32_t waddr) const;

  [[nodiscard]] std::uint32_t wear(std::uint32_t page) const;
  [[nodiscard]] std::uint64_t total_erases() const;
  /// Program + erase operations accepted since construction. The power-cut
  /// campaign enumerates cut points over this counter, so its monotonicity
  /// is part of the model's contract.
  [[nodiscard]] std::uint64_t ops() const { return ops_; }

  /// Per-page erase limit; 0 when endurance modelling is off. Out-of-range
  /// pages report through oob_queries() and return 0.
  [[nodiscard]] std::uint32_t endurance_limit(std::uint32_t page) const;
  /// True once wear(page) has exceeded the page's drawn limit. Bad pages
  /// inject stuck-at-0 bits on every erase/program; they never recover.
  [[nodiscard]] bool bad(std::uint32_t page) const;
  /// Number of pages currently past end-of-life.
  [[nodiscard]] std::uint32_t pages_bad() const;
  /// Out-of-range page/word queries (wear, bad, endurance_limit, read_word)
  /// answered with a safe value. Deterministic failure report: callers that
  /// walk off the page table show up here instead of in wear_[] garbage.
  [[nodiscard]] std::uint64_t oob_queries() const { return oob_queries_; }

  /// Tear the `op`-th operation from now (1-based) and power the device off.
  void set_cut_at(std::uint64_t op) { cut_at_ = ops_ + op; }
  void clear_cut() { cut_at_ = 0; }
  [[nodiscard]] bool powered_off() const { return powered_off_; }
  /// Reboot after a brown-out: contents and wear survive, the cut clears.
  void power_cycle() {
    powered_off_ = false;
    cut_at_ = 0;
  }

 private:
  /// Stuck-at-0 mask for one word of a bad page: pure in (seed, page, word).
  [[nodiscard]] std::uint16_t stuck_mask(std::uint32_t page, std::uint32_t word) const;
  /// AND the stuck-bit masks of a bad page into `count` words from `word0`.
  void apply_stuck_bits(std::uint32_t page, std::uint32_t word0, std::uint32_t count);

  FlashConfig cfg_;
  std::vector<std::uint16_t> words_;
  std::vector<std::uint32_t> wear_;
  std::vector<std::uint32_t> limit_;  ///< per-page erase limit (empty = unlimited)
  std::mt19937_64 rng_;
  std::uint64_t seed_;
  std::uint64_t ops_ = 0;
  std::uint64_t cut_at_ = 0;  ///< ops_ value at which to tear (0 = never)
  mutable std::uint64_t oob_queries_ = 0;
  bool powered_off_ = false;
};

}  // namespace harbor::ota
