#pragma once
// Transactional module store: intent journal + A/B image slots on the
// FlashModel, with two-phase commit and reboot-time recovery (DESIGN.md §11),
// wear-leveled slot rotation and bad-page remapping (DESIGN.md §15).
//
// Page layout:
//   [0, j)          intent journal, split into two ping-pong halves
//   [j, j+s)        slot 0
//   [j+s, j+2s)     slot 1 ... slot N-1   (j = journal pages, s = slot pages)
//   [P-r, P)        spare pages for bad-page remapping (r = spare_pages)
//
// Journal records are fixed-size (9 words), append-only, each sealed with a
// CRC32 over its body. A torn append fails the CRC and is simply invisible
// to recovery — which is the whole design: the only durable state transition
// is "one more valid record exists".
//
//   Begin{slot, words, crc}   install intent opened; the target slot is about
//                             to be erased and staged
//   Progress{words}           staging high-water mark. The first Progress(0)
//                             doubles as "target slot fully erased" — a Begin
//                             with no Progress must re-erase before staging.
//   Commit{slot, words, crc}  the linearization point: this single record
//                             append atomically makes the staged slot active
//   Abort{slot}               an interrupted install was rolled back
//   Checkpoint{slot,words,crc} compaction summary of the committed state
//   Remap{page, spare}        logical data page now lives on a spare page
//
// Sequence numbers are globally monotonic across both halves, so recovery
// can merge them: committed state = the highest-seq valid Commit/Checkpoint;
// a valid Begin above it is a resumable pending install. When the active
// half fills, compaction writes a Checkpoint (plus restated Remap records
// and a restated Begin/Progress for any open install) into the blank other
// half, then erases the old one; a cut between those steps leaves both
// halves readable and the highest sequence number still wins.
//
// Wear leveling (DESIGN.md §15): with more than two slots configured,
// begin_install rotates through every non-active slot picking the one whose
// physical pages carry the least erase wear (ties break to the lowest
// index, keeping the choice deterministic). set_wear_leveling(false) is the
// degraded mode: installs ping-pong between slots 0 and 1 only,
// concentrating wear exactly the way the soak harness's wear-spread monitor
// is built to catch.
//
// Bad-page remapping: every slot-page erase is followed by a blank-check
// read-back. A page past its endurance limit holds stuck-at-0 bits the
// erase cannot lift, so the verify fails deterministically; the store then
// claims the lowest-wear good spare page, erases and verifies it, and seals
// a Remap record in the journal. The record is appended only after the
// spare verifies, so a power cut anywhere in between leaves the old mapping
// (and the committed image) untouched — old-or-new extends to remaps.
// recover() replays Remap records (highest sequence wins, so a dying spare
// can itself be remapped) before folding the journal, because the committed
// slot's CRC must be read through the current mapping. Journal pages are
// never remapped: they see one erase per compaction cycle while slot pages
// see one per install, so data pages exhaust first by construction.
//
// recover() takes an operation budget: every flash read/program/erase spent
// replaying the journal counts against it, and exhaustion returns
// StoreState::Watchdog with FaultKind::Watchdog — a corrupted journal can
// slow boot down, never hang it (the kernel derives the budget from
// Testbed::set_cycle_budget; see sos::Kernel::recover_store).
//
// set_journal_enabled(false) is the --weakened mode: installs overwrite
// slot 0 in place with no intent records. A power cut mid-install then
// destroys the old version; recovery can only *detect* the damage through
// the image's embedded CRC (StoreState::Corrupt). That detectable-but-
// unpreventable corruption is what the power-cut campaign's self-test
// demonstrates. set_remap_enabled(false) is the aging analogue: erase
// failures go unverified, installs land on stuck bits, and the commit-time
// CRC read-back surfaces the damage as CrcMismatch instead of riding a
// spare.

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "avr/hooks.h"
#include "ota/flash_model.h"

namespace harbor::trace {
class Tracer;
}

namespace harbor::ota {

enum class InstallStatus : std::uint8_t {
  Ok,
  PowerCut,     ///< the flash tore mid-operation; the device is now down
  Dead,         ///< device already powered off; nothing happened
  Invalid,      ///< bad arguments or no open install
  Busy,         ///< an install is already open
  NoSpace,      ///< image exceeds the slot capacity
  CrcMismatch,  ///< staged bytes do not hash to the declared image CRC
  WornOut,      ///< a page failed erase-verify and no good spare remains
};

const char* install_status_name(InstallStatus s);

enum class StoreState : std::uint8_t {
  Empty,      ///< no committed module
  Committed,  ///< exactly one valid committed image is active
  Corrupt,    ///< active content fails validation (journal-less installs only)
  Watchdog,   ///< recovery exceeded its flash-operation budget
};

const char* store_state_name(StoreState s);

struct PendingInstall {
  std::uint32_t seq = 0;
  int slot = 0;
  std::uint32_t words_total = 0;
  std::uint32_t crc = 0;
  /// Journal high-water mark: words known durably staged (resume offset).
  std::uint32_t words_staged = 0;
  /// True once a Progress record exists, i.e. the slot erase completed. A
  /// pending install without it must restart (the erase itself may be torn).
  bool erased = false;
};

struct RecoveryResult {
  StoreState state = StoreState::Empty;
  std::uint32_t seq = 0;  ///< sequence number of the committed record
  int slot = -1;          ///< active slot (-1 when none)
  std::uint32_t words = 0;
  std::uint32_t crc = 0;
  std::optional<PendingInstall> pending;
  std::uint64_t ops = 0;  ///< flash operations spent recovering
  avr::FaultKind fault = avr::FaultKind::None;
};

struct StoreLayout {
  std::uint32_t journal_pages = 2;  ///< must be even (two ping-pong halves)
  std::uint32_t slots = 2;          ///< image slots in rotation (>= 2)
  std::uint32_t spare_pages = 0;    ///< bad-page remap reserve at the top
};

class ModuleStore;

/// Whole-image install in one call (no radio in between): begin, stage
/// everything, commit. The host-side path used to seed stores in tests,
/// benchmarks and the campaign's version-1 baseline.
InstallStatus install_image(ModuleStore& store, std::span<const std::uint16_t> words);

class ModuleStore {
 public:
  static constexpr std::uint32_t kRecordWords = 9;
  static constexpr std::uint64_t kUnboundedOps = ~0ull;

  /// Binds to `flash` and runs an unbounded recover() to learn the committed
  /// state. Boot paths that must stay watchdog-bounded re-run recover() with
  /// a budget (sos::Kernel::recover_store does).
  explicit ModuleStore(FlashModel& flash, StoreLayout layout = {},
                       trace::Tracer* tracer = nullptr);

  void set_tracer(trace::Tracer* t) { tracer_ = t; }
  void set_journal_enabled(bool on) { journal_enabled_ = on; }
  [[nodiscard]] bool journal_enabled() const { return journal_enabled_; }
  /// Degraded modes for the aging self-tests (see DESIGN.md §15).
  void set_wear_leveling(bool on) { wear_leveling_ = on; }
  [[nodiscard]] bool wear_leveling() const { return wear_leveling_; }
  void set_remap_enabled(bool on) { remap_enabled_ = on; }
  [[nodiscard]] bool remap_enabled() const { return remap_enabled_; }

  // --- transactional installer ---
  /// Phase 1 open: journal the intent, erase the target slot, mark it
  /// stageable. Resumes nothing — use pending() + stage_words to resume.
  InstallStatus begin_install(std::uint32_t image_words, std::uint32_t image_crc);
  InstallStatus stage_words(std::uint32_t offset, std::span<const std::uint16_t> words);
  /// Journal the staging high-water mark (durable resume-from-offset point).
  InstallStatus note_progress(std::uint32_t words_staged);
  /// Phase 2: CRC-verify the staged slot against the declared image CRC,
  /// then append the Commit record — the single-word linearization point.
  InstallStatus commit();
  InstallStatus abort_install();
  [[nodiscard]] bool install_open() const { return open_.has_value(); }
  [[nodiscard]] const std::optional<PendingInstall>& pending() const { return open_; }

  // --- reboot-time recovery ---
  RecoveryResult recover(std::uint64_t op_budget = kUnboundedOps);
  [[nodiscard]] const RecoveryResult& last_recovery() const { return state_; }

  // --- committed state ---
  [[nodiscard]] bool has_committed() const { return state_.state == StoreState::Committed; }
  /// The committed serialized image (header included), or nullopt.
  [[nodiscard]] std::optional<std::vector<std::uint16_t>> committed_image() const;
  [[nodiscard]] int active_slot() const { return state_.slot; }

  [[nodiscard]] std::uint32_t slot_capacity_words() const { return slot_pages_ * flash_.page_words(); }
  [[nodiscard]] std::uint32_t slot_base_words(int slot) const;
  [[nodiscard]] FlashModel& flash() { return flash_; }
  [[nodiscard]] const FlashModel& flash() const { return flash_; }
  [[nodiscard]] const StoreLayout& layout() const { return layout_; }

  // --- wear & remap state (soak monitors read these; see src/soak) ---
  /// Active bad-page remap table: logical data page -> spare page.
  [[nodiscard]] const std::map<std::uint32_t, std::uint32_t>& remaps() const { return remap_; }
  /// First/one-past-last data (slot) page; spares live at [spare_page_begin, pages).
  [[nodiscard]] std::uint32_t data_page_begin() const { return layout_.journal_pages; }
  [[nodiscard]] std::uint32_t data_page_end() const {
    return layout_.journal_pages + layout_.slots * slot_pages_;
  }
  [[nodiscard]] std::uint32_t spare_page_begin() const {
    return flash_.pages() - layout_.spare_pages;
  }
  /// Physical home of a logical data page under the current remap table.
  [[nodiscard]] std::uint32_t phys_page(std::uint32_t logical_page) const;
  /// max - min of per-slot worst erase wear (through the remap table):
  /// the quantity the slot-rotation leveling policy is bounding. Measured
  /// at slot granularity because a freshly claimed spare page legitimately
  /// resets a single page's wear without indicting the policy.
  [[nodiscard]] std::uint32_t wear_spread() const;

 private:
  enum class RecordType : std::uint8_t {
    Begin = 1,
    Progress = 2,
    Commit = 3,
    Abort = 4,
    Checkpoint = 5,
    Remap = 6,
  };

  struct Record {
    RecordType type = RecordType::Begin;
    std::uint32_t seq = 0;
    std::uint16_t arg0 = 0;  ///< slot (Begin/Commit/Abort/Checkpoint), words staged (Progress), logical page (Remap)
    std::uint16_t arg1 = 0;  ///< image words (Begin/Commit/Checkpoint), spare page (Remap)
    std::uint32_t crc = 0;   ///< image payload crc32
  };

  [[nodiscard]] std::uint32_t journal_half_words() const;
  [[nodiscard]] std::uint32_t records_per_half() const { return journal_half_words() / kRecordWords; }
  [[nodiscard]] std::uint32_t record_addr(int half, std::uint32_t idx) const;
  /// Word-address translation through the remap table (page granularity).
  /// Journal addresses pass through untouched by construction: remap keys
  /// are always data pages.
  [[nodiscard]] std::uint32_t translate(std::uint32_t waddr) const;
  /// Highest erase wear among the physical pages backing `slot`.
  [[nodiscard]] std::uint32_t slot_wear(int slot) const;

  /// Appends with the next sequence number (written back into `r`),
  /// compacting into the other half first when the active one is full.
  InstallStatus append_record(Record& r);
  InstallStatus write_record_at(std::uint32_t waddr, const Record& r);
  InstallStatus compact(int into_half);
  InstallStatus erase_slot(int slot);
  /// Reads the page back; true iff every word erased to 0xFFFF.
  [[nodiscard]] bool page_blank(std::uint32_t page) const;
  /// Moves `logical_page` onto the lowest-wear good spare: erase + verify
  /// the spare first, then seal the Remap record — a cut in between leaves
  /// the old mapping. WornOut when no spare survives its own verify.
  InstallStatus remap_page(std::uint32_t logical_page);
  /// Every store erase funnels through here so the tracer sees the page's
  /// wear count and the device total (OtaErase events; flash-wear metrics).
  FlashStatus erase_page_traced(std::uint32_t page);
  [[nodiscard]] InstallStatus flash_err(FlashStatus s) const;

  /// Reads one record slot, charging `ops`; nullopt if blank or corrupt.
  std::optional<Record> read_record(std::uint32_t waddr, std::uint64_t& ops) const;

  FlashModel& flash_;
  StoreLayout layout_;
  trace::Tracer* tracer_ = nullptr;
  bool journal_enabled_ = true;
  bool wear_leveling_ = true;
  bool remap_enabled_ = true;

  std::uint32_t slot_pages_ = 0;
  int active_half_ = 0;
  std::uint32_t next_record_idx_ = 0;  ///< next free slot in the active half
  std::uint32_t next_seq_ = 1;

  RecoveryResult state_;                 ///< last recovery verdict (kept current)
  std::optional<PendingInstall> open_;   ///< install in flight (RAM mirror)
  std::map<std::uint32_t, std::uint32_t> remap_;  ///< logical data page -> spare
};

}  // namespace harbor::ota
