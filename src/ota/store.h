#pragma once
// Transactional module store: intent journal + A/B image slots on the
// FlashModel, with two-phase commit and reboot-time recovery (DESIGN.md §11).
//
// Page layout:
//   [0, j)        intent journal, split into two ping-pong halves
//   [j, j+s)      slot 0
//   [j+s, j+2s)   slot 1            (j = journal pages, s = slot pages)
//
// Journal records are fixed-size (9 words), append-only, each sealed with a
// CRC32 over its body. A torn append fails the CRC and is simply invisible
// to recovery — which is the whole design: the only durable state transition
// is "one more valid record exists".
//
//   Begin{slot, words, crc}   install intent opened; the target slot is about
//                             to be erased and staged
//   Progress{words}           staging high-water mark. The first Progress(0)
//                             doubles as "target slot fully erased" — a Begin
//                             with no Progress must re-erase before staging.
//   Commit{slot, words, crc}  the linearization point: this single record
//                             append atomically makes the staged slot active
//   Abort{slot}               an interrupted install was rolled back
//   Checkpoint{slot,words,crc} compaction summary of the committed state
//
// Sequence numbers are globally monotonic across both halves, so recovery
// can merge them: committed state = the highest-seq valid Commit/Checkpoint;
// a valid Begin above it is a resumable pending install. When the active
// half fills, compaction writes a Checkpoint (plus a restated Begin/Progress
// for any open install) into the blank other half, then erases the old one;
// a cut between those steps leaves both halves readable and the highest
// sequence number still wins.
//
// recover() takes an operation budget: every flash read/program/erase spent
// replaying the journal counts against it, and exhaustion returns
// StoreState::Watchdog with FaultKind::Watchdog — a corrupted journal can
// slow boot down, never hang it (the kernel derives the budget from
// Testbed::set_cycle_budget; see sos::Kernel::recover_store).
//
// set_journal_enabled(false) is the --weakened mode: installs overwrite
// slot 0 in place with no intent records. A power cut mid-install then
// destroys the old version; recovery can only *detect* the damage through
// the image's embedded CRC (StoreState::Corrupt). That detectable-but-
// unpreventable corruption is what the power-cut campaign's self-test
// demonstrates.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "avr/hooks.h"
#include "ota/flash_model.h"

namespace harbor::trace {
class Tracer;
}

namespace harbor::ota {

enum class InstallStatus : std::uint8_t {
  Ok,
  PowerCut,     ///< the flash tore mid-operation; the device is now down
  Dead,         ///< device already powered off; nothing happened
  Invalid,      ///< bad arguments or no open install
  Busy,         ///< an install is already open
  NoSpace,      ///< image exceeds the slot capacity
  CrcMismatch,  ///< staged bytes do not hash to the declared image CRC
};

const char* install_status_name(InstallStatus s);

enum class StoreState : std::uint8_t {
  Empty,      ///< no committed module
  Committed,  ///< exactly one valid committed image is active
  Corrupt,    ///< active content fails validation (journal-less installs only)
  Watchdog,   ///< recovery exceeded its flash-operation budget
};

const char* store_state_name(StoreState s);

struct PendingInstall {
  std::uint32_t seq = 0;
  int slot = 0;
  std::uint32_t words_total = 0;
  std::uint32_t crc = 0;
  /// Journal high-water mark: words known durably staged (resume offset).
  std::uint32_t words_staged = 0;
  /// True once a Progress record exists, i.e. the slot erase completed. A
  /// pending install without it must restart (the erase itself may be torn).
  bool erased = false;
};

struct RecoveryResult {
  StoreState state = StoreState::Empty;
  std::uint32_t seq = 0;  ///< sequence number of the committed record
  int slot = -1;          ///< active slot (-1 when none)
  std::uint32_t words = 0;
  std::uint32_t crc = 0;
  std::optional<PendingInstall> pending;
  std::uint64_t ops = 0;  ///< flash operations spent recovering
  avr::FaultKind fault = avr::FaultKind::None;
};

struct StoreLayout {
  std::uint32_t journal_pages = 2;  ///< must be even (two ping-pong halves)
};

class ModuleStore;

/// Whole-image install in one call (no radio in between): begin, stage
/// everything, commit. The host-side path used to seed stores in tests,
/// benchmarks and the campaign's version-1 baseline.
InstallStatus install_image(ModuleStore& store, std::span<const std::uint16_t> words);

class ModuleStore {
 public:
  static constexpr std::uint32_t kRecordWords = 9;
  static constexpr std::uint64_t kUnboundedOps = ~0ull;

  /// Binds to `flash` and runs an unbounded recover() to learn the committed
  /// state. Boot paths that must stay watchdog-bounded re-run recover() with
  /// a budget (sos::Kernel::recover_store does).
  explicit ModuleStore(FlashModel& flash, StoreLayout layout = {},
                       trace::Tracer* tracer = nullptr);

  void set_tracer(trace::Tracer* t) { tracer_ = t; }
  void set_journal_enabled(bool on) { journal_enabled_ = on; }
  [[nodiscard]] bool journal_enabled() const { return journal_enabled_; }

  // --- transactional installer ---
  /// Phase 1 open: journal the intent, erase the target slot, mark it
  /// stageable. Resumes nothing — use pending() + stage_words to resume.
  InstallStatus begin_install(std::uint32_t image_words, std::uint32_t image_crc);
  InstallStatus stage_words(std::uint32_t offset, std::span<const std::uint16_t> words);
  /// Journal the staging high-water mark (durable resume-from-offset point).
  InstallStatus note_progress(std::uint32_t words_staged);
  /// Phase 2: CRC-verify the staged slot against the declared image CRC,
  /// then append the Commit record — the single-word linearization point.
  InstallStatus commit();
  InstallStatus abort_install();
  [[nodiscard]] bool install_open() const { return open_.has_value(); }
  [[nodiscard]] const std::optional<PendingInstall>& pending() const { return open_; }

  // --- reboot-time recovery ---
  RecoveryResult recover(std::uint64_t op_budget = kUnboundedOps);
  [[nodiscard]] const RecoveryResult& last_recovery() const { return state_; }

  // --- committed state ---
  [[nodiscard]] bool has_committed() const { return state_.state == StoreState::Committed; }
  /// The committed serialized image (header included), or nullopt.
  [[nodiscard]] std::optional<std::vector<std::uint16_t>> committed_image() const;
  [[nodiscard]] int active_slot() const { return state_.slot; }

  [[nodiscard]] std::uint32_t slot_capacity_words() const { return slot_pages_ * flash_.page_words(); }
  [[nodiscard]] std::uint32_t slot_base_words(int slot) const;
  [[nodiscard]] FlashModel& flash() { return flash_; }

 private:
  enum class RecordType : std::uint8_t {
    Begin = 1,
    Progress = 2,
    Commit = 3,
    Abort = 4,
    Checkpoint = 5,
  };

  struct Record {
    RecordType type = RecordType::Begin;
    std::uint32_t seq = 0;
    std::uint16_t arg0 = 0;  ///< slot (Begin/Commit/Abort/Checkpoint), words staged (Progress)
    std::uint16_t arg1 = 0;  ///< image words (Begin/Commit/Checkpoint)
    std::uint32_t crc = 0;   ///< image payload crc32
  };

  [[nodiscard]] std::uint32_t journal_half_words() const;
  [[nodiscard]] std::uint32_t records_per_half() const { return journal_half_words() / kRecordWords; }
  [[nodiscard]] std::uint32_t record_addr(int half, std::uint32_t idx) const;

  /// Appends with the next sequence number (written back into `r`),
  /// compacting into the other half first when the active one is full.
  InstallStatus append_record(Record& r);
  InstallStatus write_record_at(std::uint32_t waddr, const Record& r);
  InstallStatus compact(int into_half);
  InstallStatus erase_slot(int slot);
  /// Every store erase funnels through here so the tracer sees the page's
  /// wear count and the device total (OtaErase events; flash-wear metrics).
  FlashStatus erase_page_traced(std::uint32_t page);
  [[nodiscard]] InstallStatus flash_err(FlashStatus s) const;

  /// Reads one record slot, charging `ops`; nullopt if blank or corrupt.
  std::optional<Record> read_record(std::uint32_t waddr, std::uint64_t& ops) const;

  FlashModel& flash_;
  StoreLayout layout_;
  trace::Tracer* tracer_ = nullptr;
  bool journal_enabled_ = true;

  std::uint32_t slot_pages_ = 0;
  int active_half_ = 0;
  std::uint32_t next_record_idx_ = 0;  ///< next free slot in the active half
  std::uint32_t next_seq_ = 1;

  RecoveryResult state_;                 ///< last recovery verdict (kept current)
  std::optional<PendingInstall> open_;   ///< install in flight (RAM mirror)
};

}  // namespace harbor::ota
