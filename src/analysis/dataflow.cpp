#include "analysis/dataflow.h"

#include <deque>

namespace harbor::analysis {

using avr::Instr;
using avr::Mnemonic;

void ConstProp::apply(const Instr& i, RegState& s) {
  using M = Mnemonic;
  auto fold1 = [&](std::uint8_t d, auto fn) {
    if (s.known(d))
      s.set(d, static_cast<std::uint8_t>(fn(s.value(d))));
    else
      s.havoc(d);
  };
  switch (i.op) {
    // --- constants and moves (the facts V4 relies on) ---
    case M::Ldi:
      s.set(i.d, i.imm);
      break;
    case M::Ser:
      s.set(i.d, 0xff);
      break;
    case M::Mov:
      s.v[i.d] = s.v[i.r];
      break;
    case M::Movw:
      s.v[i.d] = s.v[i.r];
      s.v[i.d + 1] = s.v[i.r + 1];
      break;
    case M::Eor:
      if (i.d == i.r) s.set(i.d, 0);           // clr idiom
      else if (s.known(i.d) && s.known(i.r)) s.set(i.d, s.value(i.d) ^ s.value(i.r));
      else s.havoc(i.d);
      break;

    // --- foldable immediate / unary arithmetic ---
    case M::Subi: fold1(i.d, [&](std::uint8_t x) { return x - i.imm; }); break;
    case M::Andi: fold1(i.d, [&](std::uint8_t x) { return x & i.imm; }); break;
    case M::Ori:  fold1(i.d, [&](std::uint8_t x) { return x | i.imm; }); break;
    case M::Inc:  fold1(i.d, [](std::uint8_t x) { return x + 1; }); break;
    case M::Dec:  fold1(i.d, [](std::uint8_t x) { return x - 1; }); break;
    case M::Com:  fold1(i.d, [](std::uint8_t x) { return ~x; }); break;
    case M::Neg:  fold1(i.d, [](std::uint8_t x) { return -x; }); break;
    case M::Swap: fold1(i.d, [](std::uint8_t x) { return (x << 4) | (x >> 4); }); break;
    case M::Lsr:  fold1(i.d, [](std::uint8_t x) { return x >> 1; }); break;
    case M::Asr:  fold1(i.d, [](std::uint8_t x) { return static_cast<std::uint8_t>(
                                  static_cast<std::int8_t>(x) >> 1); }); break;
    case M::Add:
    case M::Sub:
    case M::And:
    case M::Or:
      if (s.known(i.d) && s.known(i.r)) {
        const std::uint8_t a = s.value(i.d), b = s.value(i.r);
        std::uint8_t r = 0;
        if (i.op == M::Add) r = static_cast<std::uint8_t>(a + b);
        if (i.op == M::Sub) r = static_cast<std::uint8_t>(a - b);
        if (i.op == M::And) r = a & b;
        if (i.op == M::Or) r = a | b;
        s.set(i.d, r);
      } else {
        s.havoc(i.d);
      }
      break;
    case M::Adiw:
    case M::Sbiw:
      if (s.known(i.d) && s.known(i.d + 1)) {
        std::uint16_t w = static_cast<std::uint16_t>(s.value(i.d) |
                                                     (s.value(i.d + 1) << 8));
        w = i.op == M::Adiw ? static_cast<std::uint16_t>(w + i.imm)
                            : static_cast<std::uint16_t>(w - i.imm);
        s.set(i.d, static_cast<std::uint8_t>(w & 0xff));
        s.set(i.d + 1, static_cast<std::uint8_t>(w >> 8));
      } else {
        s.havoc(i.d);
        s.havoc(i.d + 1);
      }
      break;

    // --- carry/flag-dependent or unmodelled writes -> Unknown ---
    case M::Adc: case M::Sbc: case M::Sbci: case M::Ror: case M::Bld:
      s.havoc(i.d);
      break;
    case M::Mul: case M::Muls: case M::Mulsu:
    case M::Fmul: case M::Fmuls: case M::Fmulsu:
      s.havoc(0);
      s.havoc(1);
      break;

    // --- loads: destination unknown; post-inc/dec forms move the pointer ---
    case M::LdX: case M::LddY: case M::LddZ: case M::Lds:
    case M::Lpm: case M::Elpm: case M::In: case M::Pop:
      s.havoc(i.d);
      break;
    case M::LdXInc: case M::LdXDec:
      s.havoc(i.d); s.havoc(26); s.havoc(27);
      break;
    case M::LdYInc: case M::LdYDec:
      s.havoc(i.d); s.havoc(28); s.havoc(29);
      break;
    case M::LdZInc: case M::LdZDec:
      s.havoc(i.d); s.havoc(30); s.havoc(31);
      break;
    case M::LpmInc: case M::ElpmInc:
      s.havoc(i.d); s.havoc(30); s.havoc(31);
      break;
    case M::LpmR0: case M::ElpmR0:
      s.havoc(0);
      break;

    // --- stores only move the pointer in inc/dec forms ---
    case M::StXInc: case M::StXDec:
      s.havoc(26); s.havoc(27);
      break;
    case M::StYInc: case M::StYDec:
      s.havoc(28); s.havoc(29);
      break;
    case M::StZInc: case M::StZDec:
      s.havoc(30); s.havoc(31);
      break;

    // --- calls clobber everything (callee behaviour is not modelled) ---
    case M::Call: case M::Rcall: case M::Icall:
      s.havoc_all();
      break;

    default:
      break;  // no register-file effect
  }
}

ConstProp ConstProp::run(const Cfg& cfg) {
  ConstProp cp;
  cp.cfg_ = &cfg;
  cp.block_in_.assign(cfg.blocks().size(), RegState::top());

  const auto& blocks = cfg.blocks();
  std::vector<bool> visited(blocks.size(), false);
  std::deque<std::uint32_t> work;
  for (std::uint32_t bi = 0; bi < blocks.size(); ++bi)
    if (blocks[bi].is_entry) {
      visited[bi] = true;  // entry in-state is top (caller state unknown)
      work.push_back(bi);
    }
  std::vector<bool> queued(blocks.size(), false);
  for (const std::uint32_t bi : work) queued[bi] = true;

  while (!work.empty()) {
    const std::uint32_t bi = work.front();
    work.pop_front();
    queued[bi] = false;
    RegState out = cp.block_in_[bi];
    const BasicBlock& b = blocks[bi];
    for (std::uint32_t k = 0; k < b.count; ++k)
      apply(cfg.instructions()[b.first + k].ins, out);
    for (const Edge& e : b.succs) {
      bool changed;
      if (!visited[e.block] && !blocks[e.block].is_entry) {
        cp.block_in_[e.block] = out;
        visited[e.block] = true;
        changed = true;
      } else {
        changed = cp.block_in_[e.block].join(out);
      }
      if (changed && !queued[e.block]) {
        queued[e.block] = true;
        work.push_back(e.block);
      }
    }
  }
  return cp;
}

RegState ConstProp::state_before(std::uint32_t instr_index) const {
  const std::uint32_t bi = cfg_->block_of_instr(instr_index);
  const BasicBlock& b = cfg_->blocks()[bi];
  RegState s = block_in_[bi];
  for (std::uint32_t k = b.first; k < instr_index; ++k)
    apply(cfg_->instructions()[k].ins, s);
  return s;
}

}  // namespace harbor::analysis
