#include "analysis/elide.h"

#include <algorithm>

namespace harbor::analysis {

using avr::Mnemonic;

std::string_view store_verdict_name(StoreVerdict v) {
  switch (v) {
    case StoreVerdict::Safe: return "safe";
    case StoreVerdict::Violating: return "violating";
    case StoreVerdict::Unknown: return "unknown";
  }
  return "?";
}

Interval16 store_effective_address(const avr::Instr& i, const IntervalState& s) {
  const auto shifted = [&](std::uint8_t d, int delta) -> Interval16 {
    const Interval16 p = s.pair(d);
    const std::int64_t lo = static_cast<std::int64_t>(p.lo) + delta;
    const std::int64_t hi = static_cast<std::int64_t>(p.hi) + delta;
    if (lo < 0 || hi > 0xffff) return {};
    return {static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi)};
  };
  switch (i.op) {
    case Mnemonic::StX:
    case Mnemonic::StXInc: return s.pair(26);
    case Mnemonic::StXDec: return shifted(26, -1);
    case Mnemonic::StYInc: return s.pair(28);
    case Mnemonic::StYDec: return shifted(28, -1);
    case Mnemonic::StdY: return shifted(28, i.q);
    case Mnemonic::StZInc: return s.pair(30);
    case Mnemonic::StZDec: return shifted(30, -1);
    case Mnemonic::StdZ: return shifted(30, i.q);
    case Mnemonic::Sts: return {i.k32, i.k32};
    default: return {};
  }
}

std::optional<ForbiddenUse> find_forbidden_use(const Cfg& cfg,
                                               const ConstProp& flow,
                                               const sfi::StubTable& stubs,
                                               const sfi::ElisionPolicy& policy) {
  const std::vector<std::uint32_t>& forbidden = policy.forbidden_entries;
  if (forbidden.empty()) return std::nullopt;
  const auto is_forbidden = [&](std::uint32_t abs) {
    return std::find(forbidden.begin(), forbidden.end(), abs) != forbidden.end();
  };
  for (const CallSite& cs : cfg.calls()) {
    switch (cs.kind) {
      case CallKind::Foreign:
        if (is_forbidden(cs.target))
          return ForbiddenUse{cs.off, "direct call to a forbidden jump-table entry"};
        break;
      case CallKind::Computed:
        if (!policy.computed_calls_screened)
          return ForbiddenUse{
              cs.off, "computed call (icall may dispatch through the jump table)"};
        break;
      case CallKind::Stub:
        if (cs.target == stubs.icall_check && !policy.computed_calls_screened)
          return ForbiddenUse{
              cs.off, "computed call (icall may dispatch through the jump table)"};
        break;
      case CallKind::CrossCall: {
        const RegState s = flow.state_before(cs.instr);
        if (!s.known(30) || !s.known(31))
          return ForbiddenUse{cs.off, "cross call with unprovable Z"};
        const std::uint32_t entry = static_cast<std::uint32_t>(s.value(30)) |
                                    (static_cast<std::uint32_t>(s.value(31)) << 8);
        if (is_forbidden(entry))
          return ForbiddenUse{cs.off, "cross call to a forbidden jump-table entry"};
        break;
      }
      case CallKind::Internal:
        break;
    }
  }
  return std::nullopt;
}

namespace {

bool within_any(const std::vector<MemRegion>& regions, const Interval16& a) {
  return std::any_of(regions.begin(), regions.end(),
                     [&](const MemRegion& r) { return r.contains(a.lo, a.hi); });
}

}  // namespace

ElisionReport analyze_elision(const Cfg& cfg, const ConstProp& flow,
                              const sfi::StubTable& stubs,
                              const sfi::ElisionPolicy& policy) {
  ElisionReport rep;
  bool may_elide = policy.enable;
  if (may_elide)
    if (const auto use = find_forbidden_use(cfg, flow, stubs, policy)) {
      may_elide = false;
      rep.policy_ok = false;
      rep.policy_note = use->what;
    }

  // Upward fixpoint on the elided set: proving a site safe removes its havoc
  // from the model, which only tightens intervals, so verdicts are monotone
  // and the loop terminates once no new site proves.
  IntervalOptions opts;
  for (;;) {
    const IntervalAnalysis ia = IntervalAnalysis::run(cfg, opts);
    rep.sites.clear();
    bool grew = false;
    const auto& instrs = cfg.instructions();
    for (std::uint32_t idx = 0; idx < instrs.size(); ++idx) {
      const avr::Instr& ins = instrs[idx].ins;
      if (!avr::is_data_store(ins.op)) continue;
      StoreSite site;
      site.instr = idx;
      site.off = instrs[idx].off;
      site.op = ins.op;
      const Interval16 addr = store_effective_address(ins, ia.state_before(idx));
      site.addr_lo = static_cast<std::uint16_t>(addr.lo);
      site.addr_hi = static_cast<std::uint16_t>(addr.hi);
      if (!addr.is_top() && within_any(policy.safe_regions, addr))
        site.verdict = StoreVerdict::Safe;
      else if (!addr.is_top() && within_any(policy.deny_regions, addr))
        site.verdict = StoreVerdict::Violating;
      else
        site.verdict = StoreVerdict::Unknown;
      if (may_elide && site.verdict == StoreVerdict::Safe &&
          opts.precise_stores.insert(site.off).second)
        grew = true;
      rep.sites.push_back(site);
    }
    if (!grew) break;
  }
  if (may_elide) rep.elided = std::move(opts.precise_stores);
  return rep;
}

}  // namespace harbor::analysis
