#include "analysis/cfg.h"

#include <algorithm>
#include <set>

#include "avr/decoder.h"

namespace harbor::analysis {

using avr::Instr;
using avr::Mnemonic;

namespace {

bool is_skip(Mnemonic m) {
  return m == Mnemonic::Cpse || m == Mnemonic::Sbrc || m == Mnemonic::Sbrs ||
         m == Mnemonic::Sbic || m == Mnemonic::Sbis;
}

bool is_cond_branch(Mnemonic m) { return m == Mnemonic::Brbs || m == Mnemonic::Brbc; }

/// True if the instruction ends a basic block.
bool is_terminator(Mnemonic m) {
  return is_skip(m) || is_cond_branch(m) || m == Mnemonic::Rjmp || m == Mnemonic::Jmp ||
         m == Mnemonic::Ijmp || m == Mnemonic::Ret || m == Mnemonic::Reti;
}

}  // namespace

Cfg Cfg::build(std::span<const std::uint16_t> words, std::uint32_t origin,
               std::span<const std::uint32_t> entries, const sfi::StubTable& stubs) {
  Cfg g;
  g.origin_ = origin;
  g.size_ = static_cast<std::uint32_t>(words.size());
  const std::uint32_t n = g.size_;
  const std::uint32_t end = origin + n;
  g.off_to_instr_.assign(n, -1);

  // --- linear decode ---------------------------------------------------------
  for (std::uint32_t off = 0; off < n;) {
    const Instr i = avr::decode(words[off], off + 1 < n ? words[off + 1] : 0);
    if (i.op == Mnemonic::Invalid) {
      g.invalid_off_ = off;
      break;
    }
    g.off_to_instr_[off] = static_cast<std::int32_t>(g.instrs_.size());
    g.instrs_.push_back({off, i});
    off += static_cast<std::uint32_t>(i.words());
  }

  // --- entry points ----------------------------------------------------------
  for (const std::uint32_t e : entries) {
    EntryInfo info;
    info.abs = e;
    info.in_range = e >= origin && e < end;
    info.off = info.in_range ? e - origin : 0;
    info.on_boundary = info.in_range && g.is_boundary(info.off);
    g.entries_.push_back(info);
  }

  // --- leaders ---------------------------------------------------------------
  // Relative/absolute target of an instruction, module-relative, or -1.
  auto internal_target = [&](const InstrAt& ia) -> std::int64_t {
    const Instr& i = ia.ins;
    if (i.op == Mnemonic::Rjmp || i.op == Mnemonic::Rcall || is_cond_branch(i.op))
      return static_cast<std::int64_t>(ia.off) + 1 + i.k;
    if ((i.op == Mnemonic::Jmp || i.op == Mnemonic::Call) && i.k32 >= origin && i.k32 < end)
      return static_cast<std::int64_t>(i.k32) - origin;
    return -1;
  };

  std::set<std::uint32_t> leaders;
  auto add_leader = [&](std::int64_t off) {
    if (off >= 0 && off < n && g.is_boundary(static_cast<std::uint32_t>(off)))
      leaders.insert(static_cast<std::uint32_t>(off));
  };
  if (!g.instrs_.empty()) leaders.insert(0);
  for (const EntryInfo& e : g.entries_)
    if (e.on_boundary) add_leader(e.off);
  for (std::size_t idx = 0; idx < g.instrs_.size(); ++idx) {
    const InstrAt& ia = g.instrs_[idx];
    add_leader(internal_target(ia));
    if (is_terminator(ia.ins.op)) {
      const std::uint32_t next = ia.off + static_cast<std::uint32_t>(ia.ins.words());
      add_leader(next);
      if (is_skip(ia.ins.op) && idx + 1 < g.instrs_.size()) {
        const InstrAt& ni = g.instrs_[idx + 1];
        add_leader(static_cast<std::int64_t>(ni.off) + ni.ins.words());
      }
    }
  }

  // --- blocks ----------------------------------------------------------------
  g.instr_block_.assign(g.instrs_.size(), 0);
  for (std::size_t idx = 0; idx < g.instrs_.size(); ++idx) {
    const bool starts = leaders.contains(g.instrs_[idx].off);
    if (starts || g.blocks_.empty()) {
      BasicBlock b;
      b.first = static_cast<std::uint32_t>(idx);
      b.start_off = g.instrs_[idx].off;
      g.blocks_.push_back(b);
    }
    BasicBlock& b = g.blocks_.back();
    ++b.count;
    b.end_off = g.instrs_[idx].off + static_cast<std::uint32_t>(g.instrs_[idx].ins.words());
    g.instr_block_[idx] = static_cast<std::uint32_t>(g.blocks_.size() - 1);
  }

  auto block_at_off = [&](std::int64_t off) -> std::optional<std::uint32_t> {
    if (off < 0 || off >= n) return std::nullopt;
    const auto idx = g.instr_at(static_cast<std::uint32_t>(off));
    if (!idx) return std::nullopt;
    return g.instr_block_[*idx];
  };

  for (const EntryInfo& e : g.entries_)
    if (e.on_boundary) {
      const auto b = block_at_off(e.off);
      if (b && g.blocks_[*b].start_off == e.off) g.blocks_[*b].is_entry = true;
    }

  // --- call sites & edges ----------------------------------------------------
  for (std::size_t idx = 0; idx < g.instrs_.size(); ++idx) {
    const InstrAt& ia = g.instrs_[idx];
    const Instr& i = ia.ins;
    if (i.op == Mnemonic::Call || i.op == Mnemonic::Rcall) {
      CallSite cs;
      cs.instr = static_cast<std::uint32_t>(idx);
      cs.off = ia.off;
      if (i.op == Mnemonic::Rcall) {
        const std::int64_t t = internal_target(ia);
        if (t >= 0 && t < n) {
          cs.kind = CallKind::Internal;
          cs.target = static_cast<std::uint32_t>(t);
        } else {
          cs.kind = CallKind::Foreign;
          cs.target = static_cast<std::uint32_t>(origin + ia.off + 1 + i.k);
        }
      } else if (i.k32 >= origin && i.k32 < end) {
        cs.kind = CallKind::Internal;
        cs.target = i.k32 - origin;
      } else if (i.k32 == stubs.cross_call) {
        cs.kind = CallKind::CrossCall;
        cs.target = i.k32;
      } else if (stubs.is_store_stub(i.k32) || i.k32 == stubs.save_ret ||
                 i.k32 == stubs.icall_check) {
        cs.kind = CallKind::Stub;
        cs.target = i.k32;
      } else {
        cs.kind = CallKind::Foreign;
        cs.target = i.k32;
      }
      g.calls_.push_back(cs);
    } else if (i.op == Mnemonic::Icall) {
      g.calls_.push_back(
          {static_cast<std::uint32_t>(idx), ia.off, 0, CallKind::Computed});
    }
  }

  for (std::uint32_t bi = 0; bi < g.blocks_.size(); ++bi) {
    BasicBlock& b = g.blocks_[bi];
    const std::uint32_t last = b.first + b.count - 1;
    const InstrAt& ia = g.instrs_[last];
    const Instr& i = ia.ins;
    const std::uint32_t next_off = ia.off + static_cast<std::uint32_t>(i.words());
    auto link = [&](std::optional<std::uint32_t> to, EdgeKind kind) {
      if (!to) return false;
      b.succs.push_back({*to, kind});
      return true;
    };
    if (is_cond_branch(i.op)) {
      if (!link(block_at_off(internal_target(ia)), EdgeKind::Branch)) b.exits = true;
      if (!link(block_at_off(next_off), EdgeKind::FallThrough)) b.exits = true;
    } else if (is_skip(i.op)) {
      if (!link(block_at_off(next_off), EdgeKind::FallThrough)) b.exits = true;
      if (last + 1 < g.instrs_.size()) {
        const InstrAt& ni = g.instrs_[last + 1];
        if (!link(block_at_off(static_cast<std::int64_t>(ni.off) + ni.ins.words()),
                  EdgeKind::Skip))
          b.exits = true;
      } else {
        b.exits = true;  // skip at the end of the module (V7)
      }
    } else if (i.op == Mnemonic::Rjmp || i.op == Mnemonic::Jmp) {
      if (!link(block_at_off(internal_target(ia)), EdgeKind::Jump)) b.exits = true;
    } else if (i.op == Mnemonic::Ret || i.op == Mnemonic::Reti || i.op == Mnemonic::Ijmp) {
      b.exits = true;
    } else {
      // Block ended because the next instruction is a leader (or the
      // module ends here).
      if (!link(block_at_off(next_off), EdgeKind::FallThrough)) b.exits = true;
    }
  }

  for (std::uint32_t bi = 0; bi < g.blocks_.size(); ++bi)
    for (const Edge& e : g.blocks_[bi].succs) g.blocks_[e.block].preds.push_back(bi);

  // --- reachability ----------------------------------------------------------
  std::vector<std::uint32_t> work;
  for (std::uint32_t bi = 0; bi < g.blocks_.size(); ++bi)
    if (g.blocks_[bi].is_entry) {
      g.blocks_[bi].reachable = true;
      work.push_back(bi);
    }
  while (!work.empty()) {
    const std::uint32_t bi = work.back();
    work.pop_back();
    for (const Edge& e : g.blocks_[bi].succs)
      if (!g.blocks_[e.block].reachable) {
        g.blocks_[e.block].reachable = true;
        work.push_back(e.block);
      }
    // Internal calls transfer control too.
    const BasicBlock& b = g.blocks_[bi];
    for (const CallSite& cs : g.calls_) {
      if (cs.instr < b.first || cs.instr >= b.first + b.count) continue;
      if (cs.kind != CallKind::Internal) continue;
      const auto tb = block_at_off(cs.target);
      if (tb && !g.blocks_[*tb].reachable) {
        g.blocks_[*tb].reachable = true;
        work.push_back(*tb);
      }
    }
  }
  return g;
}

std::optional<std::uint32_t> Cfg::block_at(std::uint32_t off) const {
  const auto idx = instr_at(off);
  if (!idx) return std::nullopt;
  const std::uint32_t b = instr_block_[*idx];
  if (blocks_[b].start_off != off) return std::nullopt;
  return b;
}

std::uint32_t Cfg::reachable_blocks() const {
  std::uint32_t c = 0;
  for (const BasicBlock& b : blocks_)
    if (b.reachable) ++c;
  return c;
}

}  // namespace harbor::analysis
