#include "analysis/stack_depth.h"

#include <algorithm>
#include <set>
#include <vector>

namespace harbor::analysis {

using avr::Mnemonic;

namespace {

/// Depth cap: a provable worst case beyond the whole SRAM means a
/// net-positive push loop; report unbounded instead of iterating forever.
constexpr std::int64_t kDepthCap = 4096;

struct Analyzer {
  const Cfg& cfg;
  std::map<std::uint32_t, const CallSite*> call_at;  // instr index -> site
  std::map<std::uint32_t, StackDepth> memo;          // function off -> depth
  std::set<std::uint32_t> on_stack;                  // call-graph DFS spine

  explicit Analyzer(const Cfg& g) : cfg(g) {
    for (const CallSite& cs : g.calls()) call_at[cs.instr] = &cs;
  }

  StackDepth analyze(std::uint32_t fn_off) {
    if (const auto it = memo.find(fn_off); it != memo.end()) return it->second;
    if (on_stack.contains(fn_off)) return {kUnboundedDepth};  // recursion
    on_stack.insert(fn_off);
    const StackDepth d = body_depth(fn_off);
    on_stack.erase(fn_off);
    memo[fn_off] = d;
    return d;
  }

  StackDepth body_depth(std::uint32_t fn_off) {
    const auto entry = cfg.block_at(fn_off);
    if (!entry) return {};
    std::map<std::uint32_t, std::int64_t> in_depth;  // block -> depth at entry
    in_depth[*entry] = 0;
    std::vector<std::uint32_t> work{*entry};
    std::int64_t worst = 0;
    while (!work.empty()) {
      const std::uint32_t bi = work.back();
      work.pop_back();
      const BasicBlock& b = cfg.blocks()[bi];
      std::int64_t cur = in_depth[bi];
      for (std::uint32_t k = b.first; k < b.first + b.count; ++k) {
        const avr::Instr& i = cfg.instructions()[k].ins;
        if (i.op == Mnemonic::Push) {
          ++cur;
          worst = std::max(worst, cur);
        } else if (i.op == Mnemonic::Pop) {
          --cur;
        } else if (const auto it = call_at.find(k); it != call_at.end()) {
          const CallSite& cs = *it->second;
          std::int64_t callee = 0;  // stubs / cross-domain: return address only
          if (cs.kind == CallKind::Internal) {
            const StackDepth cd = analyze(cs.target);
            if (!cd.bounded()) return {kUnboundedDepth};
            callee = cd.bytes;
          }
          worst = std::max(worst, cur + 2 + callee);
        }
      }
      for (const Edge& e : b.succs) {
        const auto it = in_depth.find(e.block);
        if (it != in_depth.end() && it->second >= cur) continue;
        if (cur > kDepthCap) return {kUnboundedDepth};  // net-positive loop
        in_depth[e.block] = cur;
        work.push_back(e.block);
      }
    }
    return {static_cast<std::uint32_t>(std::max<std::int64_t>(worst, 0))};
  }
};

}  // namespace

StackAnalysis StackAnalysis::run(const Cfg& cfg) {
  StackAnalysis sa;
  Analyzer az(cfg);
  std::set<std::uint32_t> fns;
  for (const EntryInfo& e : cfg.entries())
    if (e.on_boundary) fns.insert(e.off);
  for (const CallSite& cs : cfg.calls())
    if (cs.kind == CallKind::Internal && cfg.is_boundary(cs.target)) fns.insert(cs.target);
  for (const std::uint32_t f : fns) sa.depth_[f] = az.analyze(f);
  return sa;
}

}  // namespace harbor::analysis
