#pragma once
// Store-site classification for check elision (DESIGN.md §13).
//
// Runs the interval analysis over a module CFG and classifies every data
// store against an ElisionPolicy: provably-safe (effective address always
// inside one safe region), provably-violating (always inside a deny
// region), or unknown. Classification is an upward fixpoint: once a site
// proves safe it is re-modeled with raw store semantics (no register havoc)
// and the analysis re-runs, which can only tighten intervals and prove more
// sites — the iteration stops when the safe set stops growing.
//
// Both sides of the trust boundary use this one routine: the rewriter to
// decide which stubs to skip, and sfi::verify() to independently re-derive
// every claim in the proof manifest.

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/interval.h"
#include "sfi/elision.h"

namespace harbor::analysis {

enum class StoreVerdict : std::uint8_t {
  Safe,       ///< address interval inside one policy safe region
  Violating,  ///< address interval inside one policy deny region
  Unknown,    ///< neither provable
};

[[nodiscard]] std::string_view store_verdict_name(StoreVerdict v);

/// One data store in the module (push excluded: the stack is the runtime's
/// problem, not a checked store).
struct StoreSite {
  std::uint32_t instr = 0;  ///< index into Cfg::instructions()
  std::uint32_t off = 0;    ///< module-relative word offset
  avr::Mnemonic op = avr::Mnemonic::Invalid;
  StoreVerdict verdict = StoreVerdict::Unknown;
  /// Derived effective-address bounds (meaningful unless the pair is top).
  std::uint16_t addr_lo = 0;
  std::uint16_t addr_hi = 0xffff;
};

struct ElisionReport {
  std::vector<StoreSite> sites;  ///< every data store, in instruction order
  /// False when the policy forbids elision for this module as a whole
  /// (reachable free/change-ownership service, or computed control flow
  /// that could reach one). Sites are still classified for reporting, but
  /// `elided` stays empty.
  bool policy_ok = true;
  std::string policy_note;
  /// Word offsets of the sites that may run unchecked (Safe sites, when the
  /// policy allows elision at all).
  std::set<std::uint32_t> elided;
};

/// Effective-address interval of a data store given the abstract state
/// before it, or top on pointer wrap. Pre-decrement forms store at
/// pointer-1, post-increment forms at the un-incremented pointer,
/// displaced forms add q, sts is exact.
[[nodiscard]] Interval16 store_effective_address(const avr::Instr& i,
                                                 const IntervalState& s);

/// A site that makes a forbidden jump-table entry reachable.
struct ForbiddenUse {
  std::uint32_t off = 0;  ///< module-relative word offset of the call
  std::string what;
};

/// First use (in call-site order) through which the module could reach one
/// of the policy's forbidden entries: a direct call at the entry, a cross
/// call with the entry proven (or unprovable) in Z, or — unless the policy
/// records that the runtime screens computed dispatch
/// (computed_calls_screened) — any computed call, since icall_check admits
/// jump-table targets at run time.
std::optional<ForbiddenUse> find_forbidden_use(const Cfg& cfg,
                                               const ConstProp& flow,
                                               const sfi::StubTable& stubs,
                                               const sfi::ElisionPolicy& policy);

/// Classify every store in `cfg` under `policy`. `flow` must be the
/// ConstProp result for the same CFG (used for the cross-call Z facts that
/// decide whether a forbidden jump-table entry is reachable); `stubs`
/// identifies the icall-check stub, whose runtime semantics allow
/// jump-table dispatch and therefore forfeit elision when forbidden
/// entries exist.
ElisionReport analyze_elision(const Cfg& cfg, const ConstProp& flow,
                              const sfi::StubTable& stubs,
                              const sfi::ElisionPolicy& policy);

}  // namespace harbor::analysis
