#pragma once
// Value-range abstract interpretation over the CFG (DESIGN.md §13).
//
// Where ConstProp (dataflow.h) tracks exact byte constants, this analysis
// tracks per-register intervals [lo, hi] over the 32 GPRs, with the X/Y/Z
// pointer pairs derived as 16-bit intervals from their byte halves. It is
// what lets the SFI rewriter prove a checked store can never leave the
// module's protection-domain region — and what the verifier re-runs to
// re-derive every elision proof independently of the rewriter.
//
// Lattice: per register, intervals ordered by inclusion; top = [0, 255].
// There is no explicit bottom — like ConstProp, unreached blocks simply
// report top, which is sound. Joins take the convex hull; at loop heads
// (targets of CFG back edges) the join is accelerated with the classic
// widening operator (a bound that moved since the last visit jumps straight
// to 0 / 255), so fixpoints are reached in a bounded number of passes even
// for long-running counters.
//
// Interprocedural propagation: the state at every internal call site is
// joined into the callee's entry block (declared module entries stay top —
// a cross-domain caller can pass anything), and calls conservatively havoc
// the whole file afterwards, exactly like ConstProp. Data stores havoc the
// file too unless listed as `precise_stores`: a checked store stands for a
// call into a trusted checker stub in the rewritten image, while an elided
// (raw) store only moves its pointer in the inc/dec forms.

#include <array>
#include <cstdint>
#include <set>
#include <vector>

#include "analysis/cfg.h"

namespace harbor::analysis {

/// A contiguous data-space byte region, bounds inclusive.
struct MemRegion {
  std::uint16_t lo = 0;
  std::uint16_t hi = 0;

  [[nodiscard]] bool contains(std::uint32_t a, std::uint32_t b) const {
    return a >= lo && b <= hi;
  }
  friend bool operator==(const MemRegion&, const MemRegion&) = default;
};

/// One register's abstract value: every byte in [lo, hi].
struct Interval {
  std::int16_t lo = 0;
  std::int16_t hi = 255;

  static Interval top() { return {0, 255}; }
  static Interval exact(std::uint8_t v) {
    return {static_cast<std::int16_t>(v), static_cast<std::int16_t>(v)};
  }

  [[nodiscard]] bool is_top() const { return lo == 0 && hi == 255; }
  [[nodiscard]] bool singleton() const { return lo == hi; }
  [[nodiscard]] bool contains(std::uint8_t v) const { return v >= lo && v <= hi; }

  /// Convex-hull join. Returns true if this interval grew.
  bool join(const Interval& o) {
    bool changed = false;
    if (o.lo < lo) { lo = o.lo; changed = true; }
    if (o.hi > hi) { hi = o.hi; changed = true; }
    return changed;
  }
  /// Widening against the previous state `old`: any bound that moved is
  /// pushed straight to the lattice extreme.
  void widen_from(const Interval& old) {
    if (lo < old.lo) lo = 0;
    if (hi > old.hi) hi = 255;
  }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// A 16-bit address range (the concretization of a pointer pair).
struct Interval16 {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0xffff;

  [[nodiscard]] bool is_top() const { return lo == 0 && hi == 0xffff; }
};

/// Abstract register file.
struct IntervalState {
  std::array<Interval, 32> r{};

  static IntervalState top() {
    IntervalState s;
    s.r.fill(Interval::top());
    return s;
  }

  [[nodiscard]] const Interval& reg(std::uint8_t i) const { return r[i & 31]; }
  void set(std::uint8_t i, Interval v) { r[i & 31] = v; }
  void havoc(std::uint8_t i) { r[i & 31] = Interval::top(); }
  void havoc_all() { r.fill(Interval::top()); }

  /// 16-bit interval of the register pair d (low byte) / d+1 (high byte).
  /// The hull over independent byte intervals is exact: min = lo+lo·256,
  /// max = hi+hi·256.
  [[nodiscard]] Interval16 pair(std::uint8_t d) const {
    const Interval& l = r[d & 31];
    const Interval& h = r[(d + 1) & 31];
    return {static_cast<std::uint32_t>(l.lo) + (static_cast<std::uint32_t>(h.lo) << 8),
            static_cast<std::uint32_t>(l.hi) + (static_cast<std::uint32_t>(h.hi) << 8)};
  }
  /// Decompose a 16-bit interval back onto the byte pair. When the range
  /// stays within one high-byte page both halves are exact; otherwise the
  /// high byte keeps its range and the low byte widens to top (a sound
  /// superset of the true set of pairs).
  void set_pair(std::uint8_t d, Interval16 v);

  bool join(const IntervalState& o) {
    bool changed = false;
    for (int i = 0; i < 32; ++i) changed |= r[i].join(o.r[i]);
    return changed;
  }
  void widen_from(const IntervalState& old) {
    for (int i = 0; i < 32; ++i) r[i].widen_from(old.r[i]);
  }

  friend bool operator==(const IntervalState&, const IntervalState&) = default;
};

struct IntervalOptions {
  /// Module-relative word offsets of data stores modeled with raw store
  /// semantics (elided sites: only the pointer moves in inc/dec forms).
  /// Every other data store havocs the register file — in a rewritten image
  /// it stands for a call into a checker stub.
  std::set<std::uint32_t> precise_stores;
};

class IntervalAnalysis {
 public:
  /// Worklist fixpoint with loop-head widening and call-site -> callee-entry
  /// propagation. The result keeps a reference to `cfg`, which must outlive
  /// it (temporaries are rejected).
  static IntervalAnalysis run(const Cfg& cfg, IntervalOptions opts = {});
  static IntervalAnalysis run(Cfg&&, IntervalOptions = {}) = delete;

  /// Abstract state immediately before instruction `instr_index`
  /// (recomputed from the containing block's in-state).
  [[nodiscard]] IntervalState state_before(std::uint32_t instr_index) const;

  [[nodiscard]] const IntervalState& block_in(std::uint32_t block) const {
    return block_in_[block];
  }
  /// Blocks that are the target of a CFG back edge (widening points).
  [[nodiscard]] const std::vector<bool>& loop_heads() const { return loop_heads_; }

  /// Apply one instruction's transfer function. `precise_store` selects raw
  /// store semantics for data stores (see IntervalOptions).
  static void apply(const avr::Instr& i, IntervalState& s, bool precise_store);

 private:
  const Cfg* cfg_ = nullptr;
  IntervalOptions opts_;
  std::vector<IntervalState> block_in_;
  std::vector<bool> loop_heads_;
};

}  // namespace harbor::analysis
