#include "analysis/interval.h"

#include <deque>
#include <map>

namespace harbor::analysis {

using avr::Instr;
using avr::Mnemonic;

namespace {

/// { (x + delta) mod 256 : x in a }. Exact when the shifted range stays in
/// one 256-aligned window; top when it straddles a wrap boundary.
Interval shift_mod256(const Interval& a, int delta) {
  const int lo = a.lo + delta;
  const int hi = a.hi + delta;
  // Compare window indices with an offset so the division is well-defined
  // for negative values.
  if ((lo + 1024) / 256 != (hi + 1024) / 256) return Interval::top();
  return {static_cast<std::int16_t>(((lo % 256) + 256) % 256),
          static_cast<std::int16_t>(((hi % 256) + 256) % 256)};
}

Interval add_mod256(const Interval& a, const Interval& b) {
  const int lo = a.lo + b.lo;
  const int hi = a.hi + b.hi;
  if (lo / 256 != hi / 256) return Interval::top();
  return {static_cast<std::int16_t>(lo % 256), static_cast<std::int16_t>(hi % 256)};
}

Interval sub_mod256(const Interval& a, const Interval& b) {
  return shift_mod256({static_cast<std::int16_t>(a.lo - b.hi),
                       static_cast<std::int16_t>(a.hi - b.lo)},
                      0);
}

}  // namespace

void IntervalState::set_pair(std::uint8_t d, Interval16 v) {
  if ((v.lo >> 8) == (v.hi >> 8)) {
    r[d & 31] = {static_cast<std::int16_t>(v.lo & 0xff),
                 static_cast<std::int16_t>(v.hi & 0xff)};
    r[(d + 1) & 31] = Interval::exact(static_cast<std::uint8_t>(v.lo >> 8));
  } else {
    r[d & 31] = Interval::top();
    r[(d + 1) & 31] = {static_cast<std::int16_t>(v.lo >> 8),
                       static_cast<std::int16_t>(v.hi >> 8)};
  }
}

namespace {

/// pair(d) += delta; a shift past either end of the address space gives up
/// on the pair (wrapping pointers never prove anything).
void pair_shift(IntervalState& s, std::uint8_t d, int delta) {
  const Interval16 p = s.pair(d);
  const std::int64_t lo = static_cast<std::int64_t>(p.lo) + delta;
  const std::int64_t hi = static_cast<std::int64_t>(p.hi) + delta;
  if (lo < 0 || hi > 0xffff) {
    s.havoc(d);
    s.havoc(d + 1);
    return;
  }
  s.set_pair(d, {static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi)});
}

}  // namespace

void IntervalAnalysis::apply(const Instr& i, IntervalState& s, bool precise_store) {
  using M = Mnemonic;
  const Interval d = s.reg(i.d);
  const Interval r = s.reg(i.r);
  switch (i.op) {
    // --- constants and moves ---
    case M::Ldi: s.set(i.d, Interval::exact(i.imm)); break;
    case M::Ser: s.set(i.d, Interval::exact(0xff)); break;
    case M::Mov: s.set(i.d, r); break;
    case M::Movw:
      s.set(i.d, s.reg(i.r));
      s.set(i.d + 1, s.reg(i.r + 1));
      break;
    case M::Eor:
      if (i.d == i.r) s.set(i.d, Interval::exact(0));
      else if (d.singleton() && r.singleton())
        s.set(i.d, Interval::exact(static_cast<std::uint8_t>(d.lo ^ r.lo)));
      else s.havoc(i.d);
      break;

    // --- immediate / unary arithmetic ---
    case M::Subi: s.set(i.d, shift_mod256(d, -static_cast<int>(i.imm))); break;
    case M::Inc: s.set(i.d, shift_mod256(d, 1)); break;
    case M::Dec: s.set(i.d, shift_mod256(d, -1)); break;
    case M::Andi:
      if (d.singleton())
        s.set(i.d, Interval::exact(static_cast<std::uint8_t>(d.lo & i.imm)));
      else
        s.set(i.d, {0, static_cast<std::int16_t>(std::min<int>(d.hi, i.imm))});
      break;
    case M::Ori:
      if (d.singleton())
        s.set(i.d, Interval::exact(static_cast<std::uint8_t>(d.lo | i.imm)));
      else
        s.set(i.d, {static_cast<std::int16_t>(std::max<int>(d.lo, i.imm)), 255});
      break;
    case M::Com:
      s.set(i.d, {static_cast<std::int16_t>(255 - d.hi),
                  static_cast<std::int16_t>(255 - d.lo)});
      break;
    case M::Neg:
      if (d.singleton())
        s.set(i.d, Interval::exact(static_cast<std::uint8_t>(-d.lo)));
      else
        s.havoc(i.d);
      break;
    case M::Swap:
      if (d.singleton())
        s.set(i.d, Interval::exact(static_cast<std::uint8_t>((d.lo << 4) | (d.lo >> 4))));
      else
        s.havoc(i.d);
      break;
    case M::Lsr:
      s.set(i.d, {static_cast<std::int16_t>(d.lo >> 1),
                  static_cast<std::int16_t>(d.hi >> 1)});
      break;
    case M::Asr:
      if (d.hi <= 127)
        s.set(i.d, {static_cast<std::int16_t>(d.lo >> 1),
                    static_cast<std::int16_t>(d.hi >> 1)});
      else if (d.lo >= 128)
        s.set(i.d, {static_cast<std::int16_t>((d.lo >> 1) + 128),
                    static_cast<std::int16_t>((d.hi >> 1) + 128)});
      else
        s.havoc(i.d);
      break;

    // --- register-register arithmetic ---
    case M::Add: s.set(i.d, add_mod256(d, r)); break;
    case M::Sub: s.set(i.d, sub_mod256(d, r)); break;
    case M::And:
      if (d.singleton() && r.singleton())
        s.set(i.d, Interval::exact(static_cast<std::uint8_t>(d.lo & r.lo)));
      else
        s.set(i.d, {0, static_cast<std::int16_t>(std::min(d.hi, r.hi))});
      break;
    case M::Or:
      if (d.singleton() && r.singleton())
        s.set(i.d, Interval::exact(static_cast<std::uint8_t>(d.lo | r.lo)));
      else
        s.set(i.d, {std::max(d.lo, r.lo), 255});
      break;
    case M::Adiw: {
      const Interval16 p = s.pair(i.d);
      const std::uint32_t lo = p.lo + i.imm;
      const std::uint32_t hi = p.hi + i.imm;
      if ((lo >> 16) != (hi >> 16)) {
        s.havoc(i.d);
        s.havoc(i.d + 1);
      } else {
        s.set_pair(i.d, {lo & 0xffff, hi & 0xffff});
      }
      break;
    }
    case M::Sbiw: pair_shift(s, i.d, -static_cast<int>(i.imm)); break;

    // --- carry/flag-dependent or unmodelled writes ---
    case M::Adc: case M::Sbc: case M::Sbci: case M::Ror: case M::Bld:
      s.havoc(i.d);
      break;
    case M::Mul: case M::Muls: case M::Mulsu:
    case M::Fmul: case M::Fmuls: case M::Fmulsu:
      s.havoc(0);
      s.havoc(1);
      break;

    // --- loads: destination unknown; inc/dec forms move the pointer ---
    case M::LdX: case M::LddY: case M::LddZ: case M::Lds:
    case M::Lpm: case M::Elpm: case M::In: case M::Pop:
      s.havoc(i.d);
      break;
    case M::LdXInc: s.havoc(i.d); pair_shift(s, 26, 1); break;
    case M::LdXDec: s.havoc(i.d); pair_shift(s, 26, -1); break;
    case M::LdYInc: s.havoc(i.d); pair_shift(s, 28, 1); break;
    case M::LdYDec: s.havoc(i.d); pair_shift(s, 28, -1); break;
    case M::LdZInc: s.havoc(i.d); pair_shift(s, 30, 1); break;
    case M::LdZDec: s.havoc(i.d); pair_shift(s, 30, -1); break;
    case M::LpmInc: case M::ElpmInc:
      s.havoc(i.d);
      pair_shift(s, 30, 1);
      break;
    case M::LpmR0: case M::ElpmR0:
      s.havoc(0);
      break;

    // --- stores: a checked store stands for a stub call (havoc); a precise
    // (elided) store has raw semantics: only inc/dec move the pointer ---
    case M::StX: case M::StdY: case M::StdZ: case M::Sts:
      if (!precise_store) s.havoc_all();
      break;
    case M::StXInc:
      if (precise_store) pair_shift(s, 26, 1); else s.havoc_all();
      break;
    case M::StXDec:
      if (precise_store) pair_shift(s, 26, -1); else s.havoc_all();
      break;
    case M::StYInc:
      if (precise_store) pair_shift(s, 28, 1); else s.havoc_all();
      break;
    case M::StYDec:
      if (precise_store) pair_shift(s, 28, -1); else s.havoc_all();
      break;
    case M::StZInc:
      if (precise_store) pair_shift(s, 30, 1); else s.havoc_all();
      break;
    case M::StZDec:
      if (precise_store) pair_shift(s, 30, -1); else s.havoc_all();
      break;

    // --- calls clobber everything (interprocedural seeding happens in
    // run(), before this havoc) ---
    case M::Call: case M::Rcall: case M::Icall:
      s.havoc_all();
      break;

    default:
      break;  // no register-file effect
  }
}

IntervalAnalysis IntervalAnalysis::run(const Cfg& cfg, IntervalOptions opts) {
  IntervalAnalysis ia;
  ia.cfg_ = &cfg;
  ia.opts_ = std::move(opts);
  const auto& blocks = cfg.blocks();
  ia.block_in_.assign(blocks.size(), IntervalState::top());
  ia.loop_heads_.assign(blocks.size(), false);

  // Roots: declared entries plus internal call targets (reachability roots).
  std::vector<std::uint32_t> roots;
  for (std::uint32_t bi = 0; bi < blocks.size(); ++bi)
    if (blocks[bi].is_entry) roots.push_back(bi);
  std::map<std::uint32_t, const CallSite*> call_at;  // instr index -> site
  for (const CallSite& cs : cfg.calls()) {
    call_at[cs.instr] = &cs;
    if (cs.kind == CallKind::Internal)
      if (const auto tb = cfg.block_at(cs.target)) roots.push_back(*tb);
  }

  // --- loop heads: targets of DFS back edges ---------------------------------
  {
    enum : std::uint8_t { White, Grey, Black };
    std::vector<std::uint8_t> color(blocks.size(), White);
    for (const std::uint32_t root : roots) {
      if (color[root] != White) continue;
      // Iterative DFS with an explicit edge cursor so Grey marks exactly the
      // current path.
      std::vector<std::pair<std::uint32_t, std::size_t>> stack{{root, 0}};
      color[root] = Grey;
      while (!stack.empty()) {
        auto& [bi, cursor] = stack.back();
        if (cursor < blocks[bi].succs.size()) {
          const std::uint32_t to = blocks[bi].succs[cursor++].block;
          if (color[to] == White) {
            color[to] = Grey;
            stack.push_back({to, 0});
          } else if (color[to] == Grey) {
            ia.loop_heads_[to] = true;  // back edge
          }
        } else {
          color[bi] = Black;
          stack.pop_back();
        }
      }
    }
  }

  // --- worklist fixpoint -----------------------------------------------------
  std::vector<bool> visited(blocks.size(), false);
  std::vector<bool> queued(blocks.size(), false);
  std::deque<std::uint32_t> work;
  for (std::uint32_t bi = 0; bi < blocks.size(); ++bi)
    if (blocks[bi].is_entry) {
      visited[bi] = true;  // entry in-state is top (caller state unknown)
      if (!queued[bi]) {
        queued[bi] = true;
        work.push_back(bi);
      }
    }

  auto flow_into = [&](std::uint32_t to, const IntervalState& out) {
    bool changed;
    if (!visited[to] && !blocks[to].is_entry) {
      ia.block_in_[to] = out;
      visited[to] = true;
      changed = true;
    } else if (blocks[to].is_entry) {
      changed = false;  // declared entries stay top
    } else {
      const IntervalState old = ia.block_in_[to];
      changed = ia.block_in_[to].join(out);
      if (changed && ia.loop_heads_[to]) ia.block_in_[to].widen_from(old);
    }
    if (changed && !queued[to]) {
      queued[to] = true;
      work.push_back(to);
    }
  };

  while (!work.empty()) {
    const std::uint32_t bi = work.front();
    work.pop_front();
    queued[bi] = false;
    IntervalState out = ia.block_in_[bi];
    const BasicBlock& b = blocks[bi];
    for (std::uint32_t k = 0; k < b.count; ++k) {
      const std::uint32_t idx = b.first + k;
      const InstrAt& inst = cfg.instructions()[idx];
      // Call-site -> callee-entry propagation: the callee observes the
      // caller's registers as they are at the call instruction.
      const auto cs = call_at.find(idx);
      if (cs != call_at.end() && cs->second->kind == CallKind::Internal)
        if (const auto tb = cfg.block_at(cs->second->target)) flow_into(*tb, out);
      apply(inst.ins, out, ia.opts_.precise_stores.contains(inst.off));
    }
    for (const Edge& e : b.succs) flow_into(e.block, out);
  }
  return ia;
}

IntervalState IntervalAnalysis::state_before(std::uint32_t instr_index) const {
  const std::uint32_t bi = cfg_->block_of_instr(instr_index);
  const BasicBlock& b = cfg_->blocks()[bi];
  IntervalState s = block_in_[bi];
  for (std::uint32_t k = b.first; k < instr_index; ++k) {
    const InstrAt& inst = cfg_->instructions()[k];
    apply(inst.ins, s, opts_.precise_stores.contains(inst.off));
  }
  return s;
}

}  // namespace harbor::analysis
