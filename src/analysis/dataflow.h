#pragma once
// Abstract interpretation over the CFG: a per-register constant lattice.
//
// Each of r0-r31 is either Const(k) or Unknown (top). The transfer function
// tracks ldi, register moves (mov/movw), the common clear idioms and
// immediate arithmetic it can fold; every other register write — including
// all calls, which conservatively havoc the whole file — maps to Unknown.
//
// This is what turns the verifier's V4 cross-call rule into a proven
// dataflow fact: at every `call harbor_cross_call` site the analysis either
// proves Z = a specific jump-table entry (tracking the constant across
// intervening moves and block boundaries) or the call is rejected. Entry
// blocks start from all-Unknown; block in-states are the join (equal
// constants survive, anything else widens to Unknown) over predecessor
// out-states, iterated to fixpoint with a worklist.

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/cfg.h"

namespace harbor::analysis {

/// Abstract register file: per-register -1 = Unknown, else the byte value.
struct RegState {
  std::array<std::int16_t, 32> v{};

  static RegState top() {
    RegState s;
    s.v.fill(-1);
    return s;
  }

  [[nodiscard]] bool known(std::uint8_t r) const { return v[r & 31] >= 0; }
  [[nodiscard]] std::uint8_t value(std::uint8_t r) const {
    return static_cast<std::uint8_t>(v[r & 31]);
  }
  void set(std::uint8_t r, std::uint8_t k) { v[r & 31] = k; }
  void havoc(std::uint8_t r) { v[r & 31] = -1; }
  void havoc_all() { v.fill(-1); }

  /// Join with `o` (least upper bound). Returns true if this state changed.
  bool join(const RegState& o) {
    bool changed = false;
    for (int r = 0; r < 32; ++r)
      if (v[r] != o.v[r] && v[r] != -1) {
        v[r] = -1;
        changed = true;
      }
    return changed;
  }

  friend bool operator==(const RegState&, const RegState&) = default;
};

class ConstProp {
 public:
  /// Run the worklist analysis to fixpoint. The result keeps a reference to
  /// `cfg`, which must outlive it (temporaries are rejected).
  static ConstProp run(const Cfg& cfg);
  static ConstProp run(Cfg&&) = delete;

  /// Abstract state immediately before instruction `instr_index`
  /// (recomputed from the containing block's in-state). Blocks never
  /// reached from an entry report all-Unknown.
  [[nodiscard]] RegState state_before(std::uint32_t instr_index) const;

  /// In-state of a block (all-Unknown when unreached).
  [[nodiscard]] const RegState& block_in(std::uint32_t block) const {
    return block_in_[block];
  }

  /// Apply one instruction's transfer function to `s`.
  static void apply(const avr::Instr& i, RegState& s);

 private:
  const Cfg* cfg_ = nullptr;
  std::vector<RegState> block_in_;
};

}  // namespace harbor::analysis
