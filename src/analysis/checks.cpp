#include "analysis/checks.h"

#include <map>

#include "avr/ports.h"

namespace harbor::analysis {

using avr::Instr;
using avr::Mnemonic;
namespace ports = avr::ports;

namespace {

/// IO ports module code may not write: the UMPU/protection register file
/// and the stack pointer (SPL/SPH); SREG writes are permitted.
bool forbidden_port(std::uint8_t port) {
  return port <= ports::kFaultAddrHi || port == ports::kSpl || port == ports::kSph;
}

bool is_skip(Mnemonic m) {
  return m == Mnemonic::Cpse || m == Mnemonic::Sbrc || m == Mnemonic::Sbrs ||
         m == Mnemonic::Sbic || m == Mnemonic::Sbis;
}

void add(std::vector<Finding>& out, std::uint32_t off, const char* rule,
         std::string message, bool violation = true) {
  out.push_back({off, violation, rule, std::move(message)});
}

}  // namespace

std::vector<Finding> check_module(const Cfg& cfg, const sfi::StubTable& stubs,
                                  const ConstProp& flow,
                                  const ElisionContext& elide) {
  std::vector<Finding> out;
  const std::uint32_t n = cfg.size();
  const std::uint32_t origin = cfg.origin();
  const std::uint32_t end = origin + n;
  const auto& instrs = cfg.instructions();

  // Cross-call sites by instruction index, for the V4 dataflow check.
  std::map<std::uint32_t, const CallSite*> call_at;
  for (const CallSite& cs : cfg.calls()) call_at[cs.instr] = &cs;

  // --- V9 re-proof setup: the manifest is a set of claims, re-derived here
  // independently of whoever produced it (see ElisionContext) ----------------
  const bool elision = elide.policy && elide.policy->enable && elide.manifest &&
                       !elide.manifest->sites.empty();
  std::map<std::uint32_t, const sfi::ProofSite*> claim_at;  // off -> claim
  std::map<std::uint32_t, bool> claim_used;
  std::optional<IntervalAnalysis> ranges;
  if (elision) {
    IntervalOptions opts;
    for (const sfi::ProofSite& s : elide.manifest->sites) {
      claim_at[s.off] = &s;
      claim_used[s.off] = false;
      opts.precise_stores.insert(s.off);
    }
    ranges.emplace(IntervalAnalysis::run(cfg, std::move(opts)));
  }
  const auto in_safe_region = [&](std::uint16_t lo, std::uint16_t hi) {
    for (const MemRegion& r : elide.policy->safe_regions)
      if (r.contains(lo, hi)) return true;
    return false;
  };

  // --- per-instruction rules, linear order (legacy pass 1) -------------------
  for (std::uint32_t idx = 0; idx < instrs.size(); ++idx) {
    const std::uint32_t at = instrs[idx].off;
    const Instr& i = instrs[idx].ins;
    if (avr::is_data_store(i.op)) {
      const auto claim = elision ? claim_at.find(at) : claim_at.end();
      if (claim == claim_at.end()) {
        add(out, at, "V2", "raw data store (V2)");
      } else {
        claim_used[at] = true;
        const sfi::ProofSite& c = *claim->second;
        const Interval16 addr =
            store_effective_address(i, ranges->state_before(idx));
        if (addr.is_top() || addr.lo < c.addr_lo || addr.hi > c.addr_hi)
          add(out, at, "V9", "elided store fails re-proof (V9)");
        else if (!in_safe_region(c.addr_lo, c.addr_hi))
          add(out, at, "V9", "elided store outside the safe regions (V9)");
      }
    }
    if (i.op == Mnemonic::Spm) add(out, at, "V2", "spm self-programming (V2)");
    if (i.op == Mnemonic::Ret || i.op == Mnemonic::Reti)
      add(out, at, "V3", "raw return (V3)");
    if (i.op == Mnemonic::Icall || i.op == Mnemonic::Ijmp)
      add(out, at, "V3", "raw computed transfer (V3)");
    if (i.op == Mnemonic::Out && forbidden_port(i.a))
      add(out, at, "V6", "write to a protected IO port (V6)");
    if ((i.op == Mnemonic::Sbi || i.op == Mnemonic::Cbi) && forbidden_port(i.a))
      add(out, at, "V6", "bit write to a protected IO port (V6)");

    if (i.op == Mnemonic::Call) {
      const auto cs = call_at.find(idx);
      if (cs != call_at.end() && cs->second->kind == CallKind::Foreign) {
        add(out, at, "V4", "call to a foreign address (V4)");
      } else if (cs != call_at.end() && cs->second->kind == CallKind::CrossCall) {
        // V4 as a dataflow fact: Z must provably hold a jump-table entry.
        const RegState s = flow.state_before(idx);
        if (!s.known(30) || !s.known(31)) {
          add(out, at, "V4", "cross call without Z preamble (V4)");
        } else {
          const std::uint32_t entry = static_cast<std::uint32_t>(s.value(30)) |
                                      (static_cast<std::uint32_t>(s.value(31)) << 8);
          if (!stubs.in_jump_table(entry))
            add(out, at, "V4", "cross call outside the jump table (V4)");
        }
      }
    }
    if (i.op == Mnemonic::Jmp) {
      const std::uint32_t t = i.k32;
      const bool internal = t >= origin && t < end;
      if (!internal && t != stubs.restore_ret && t != stubs.ijmp_check)
        add(out, at, "V5", "jmp to a foreign address (V5)");
    }
    if (i.op == Mnemonic::Rjmp || i.op == Mnemonic::Rcall) {
      const std::int64_t t = static_cast<std::int64_t>(origin) + at + 1 + i.k;
      if (t < origin || t >= end)
        add(out, at, "V5", "relative transfer leaves the module (V5)");
    }
    if (i.op == Mnemonic::Brbs || i.op == Mnemonic::Brbc) {
      const std::int64_t t = static_cast<std::int64_t>(origin) + at + 1 + i.k;
      if (t < origin || t >= end)
        add(out, at, "V5", "branch leaves the module (V5)");
    }
    if (is_skip(i.op)) {
      const std::uint32_t next = at + 1;
      if (next >= n) {
        add(out, at, "V7", "skip at the end of the module (V7)");
      } else if (idx + 1 >= instrs.size() || instrs[idx + 1].ins.words() != 1) {
        // The word after the skip is either undecodable or the start of a
        // two-word instruction: the skip could land inside an operand word.
        add(out, at, "V7", "skip over a multi-word instruction (V7)");
      }
    }
  }
  if (cfg.invalid_off())
    add(out, *cfg.invalid_off(), "V1", "undecodable opcode (V1)");

  // --- remaining V9 obligations: a manifest may not name non-store sites,
  // and elisions forfeit if a forbidden jump-table entry is reachable -------
  if (elision) {
    for (const auto& [off, used] : claim_used)
      if (!used)
        add(out, off, "V9", "proof manifest names a non-store site (V9)");
    if (const auto use = find_forbidden_use(cfg, flow, stubs, *elide.policy))
      add(out, use->off, "V9",
          "elision with a forbidden service reachable: " + use->what + " (V9)");
  }

  // --- transfer-target boundary discipline (legacy pass 2, V1) ---------------
  for (const InstrAt& ia : instrs) {
    const Instr& i = ia.ins;
    std::int64_t t = -1;
    if (i.op == Mnemonic::Rjmp || i.op == Mnemonic::Rcall || i.op == Mnemonic::Brbs ||
        i.op == Mnemonic::Brbc)
      t = static_cast<std::int64_t>(ia.off) + 1 + i.k;
    if ((i.op == Mnemonic::Jmp || i.op == Mnemonic::Call) && i.k32 >= origin && i.k32 < end)
      t = static_cast<std::int64_t>(i.k32) - origin;
    if (t >= 0 && (t >= n || !cfg.is_boundary(static_cast<std::uint32_t>(t))))
      add(out, ia.off, "V1", "transfer into the middle of an instruction (V1)");
  }

  // --- entry points (V8), module-relative offsets per the VerifyResult
  // contract ------------------------------------------------------------------
  for (const EntryInfo& e : cfg.entries()) {
    if (!e.in_range || !e.on_boundary) {
      add(out, e.off, "V8", "entry is not an instruction boundary (V8)");
      continue;
    }
    const Instr& i = instrs[*cfg.instr_at(e.off)].ins;
    if (i.op != Mnemonic::Call || i.k32 != stubs.save_ret)
      add(out, e.off, "V8", "entry without save_ret prologue (V8)");
  }
  return out;
}

std::vector<Finding> lint_module(const Cfg& cfg, const sfi::StubTable& stubs,
                                 const ConstProp& flow, const StackAnalysis& stack,
                                 const LintOptions& opt) {
  std::vector<Finding> out = check_module(cfg, stubs, flow);

  if (opt.warn_unreachable) {
    // Coalesce runs of unreachable blocks into one finding each.
    const auto& blocks = cfg.blocks();
    for (std::size_t bi = 0; bi < blocks.size();) {
      if (blocks[bi].reachable) {
        ++bi;
        continue;
      }
      const std::uint32_t start = blocks[bi].start_off;
      std::uint32_t stop = blocks[bi].end_off;
      while (bi < blocks.size() && !blocks[bi].reachable) stop = blocks[bi++].end_off;
      add(out, start,
          "L1", "unreachable code: words " + std::to_string(start) + ".." +
                    std::to_string(stop - 1) + " never reached from any entry (L1)",
          /*violation=*/false);
    }
  }

  for (const EntryInfo& e : cfg.entries()) {
    if (!e.on_boundary) continue;
    const StackDepth d = stack.function_depth(e.off);
    if (!d.bounded()) {
      add(out, e.off, "L2",
          "unbounded worst-case stack depth (recursive call cycle) (L2)",
          /*violation=*/false);
    } else if (opt.stack_capacity != 0 && d.bytes > opt.stack_capacity) {
      add(out, e.off, "L2",
          "worst-case stack depth " + std::to_string(d.bytes) +
              " bytes exceeds the " + std::to_string(opt.stack_capacity) +
              "-byte stack capacity (L2)",
          /*violation=*/false);
    }
  }
  return out;
}

}  // namespace harbor::analysis
