#pragma once
// Module checks over the CFG + dataflow results.
//
// check_module() evaluates the verifier rules V1-V8 (see sfi/verifier.h)
// and returns every violation, in the order the legacy two-pass verifier
// discovered them: per-instruction rules in linear order (with V4's
// cross-call rule decided by the ConstProp dataflow fact about Z), then
// transfer-target boundary checks, then entry-point checks. sfi::verify()
// reports the first violation; harbor-lint reports them all.
//
// lint_module() additionally emits warnings the admission decision does not
// depend on: unreachable regions (dead code that could hide gadget
// material) and worst-case stack-depth findings against a capacity.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/elide.h"
#include "analysis/stack_depth.h"

namespace harbor::analysis {

struct Finding {
  std::uint32_t off = 0;   ///< module-relative word offset
  bool violation = true;   ///< false: lint warning only
  std::string rule;        ///< "V1".."V9" or "L1"/"L2"
  std::string message;     ///< V-rule text matches the legacy verifier
};

/// Elision re-proof inputs for rule V9. With both pointers set and a
/// non-empty manifest, a raw data store at a manifest offset is not a V2
/// violation but a re-proof obligation: the checks re-run the interval
/// analysis (with the manifest sites modeled as raw stores) and the claim
/// must re-derive — address interval within the claimed bounds, claimed
/// bounds within a policy safe region, no forbidden jump-table entry
/// reachable, every manifest offset an actual store. Any failure is a V9
/// violation; a raw store *not* in the manifest stays a V2.
struct ElisionContext {
  const sfi::ElisionPolicy* policy = nullptr;
  const sfi::ProofManifest* manifest = nullptr;
};

/// Verifier rules V1-V8 (plus V9 when `elide` carries a manifest).
/// Violations only, legacy discovery order.
std::vector<Finding> check_module(const Cfg& cfg, const sfi::StubTable& stubs,
                                  const ConstProp& flow,
                                  const ElisionContext& elide = {});

struct LintOptions {
  /// Stack capacity in bytes for the L2 check (0 disables it). Callers
  /// typically pass the safe-stack capacity from runtime::Layout.
  std::uint32_t stack_capacity = 0;
  bool warn_unreachable = true;
};

/// V1-V8 plus lint warnings (L1 unreachable code, L2 stack depth).
std::vector<Finding> lint_module(const Cfg& cfg, const sfi::StubTable& stubs,
                                 const ConstProp& flow, const StackAnalysis& stack,
                                 const LintOptions& opt);

}  // namespace harbor::analysis
