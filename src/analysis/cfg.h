#pragma once
// Control-flow graph over a module binary.
//
// The verifier and harbor-lint both work from this whole-module view: a
// linear decode of the image is split into basic blocks connected by
// fall-through, branch, skip and jump edges, with call sites (internal,
// trusted-stub, cross-domain, computed, foreign) recorded separately since
// calls return and therefore do not end a block. Reachability is computed
// from the declared entry points so dead regions — where gadget material
// could hide — are visible to the checks.
//
// Construction never throws: an undecodable word stops the linear decode
// and is reported through invalid_off(); transfers that leave the module
// or miss an instruction boundary simply produce no edge (the checks turn
// them into V1/V5 findings).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "avr/instr.h"
#include "sfi/stub_table.h"

namespace harbor::analysis {

enum class EdgeKind : std::uint8_t {
  FallThrough,  ///< linear successor (incl. the not-taken side of a branch)
  Branch,       ///< taken conditional branch
  Skip,         ///< skip-taken edge of cpse/sbrc/sbrs/sbic/sbis
  Jump,         ///< unconditional rjmp/jmp
};

enum class CallKind : std::uint8_t {
  Internal,   ///< call/rcall with a target inside the module
  Stub,       ///< call to a trusted runtime stub (store checkers, save_ret, ...)
  CrossCall,  ///< call harbor_cross_call (cross-domain, Z selects the entry)
  Computed,   ///< icall (target unknown statically; V3 in verified code)
  Foreign,    ///< call to an address that is neither internal nor a stub (V4)
};

/// One decoded instruction at its module-relative word offset.
struct InstrAt {
  std::uint32_t off = 0;
  avr::Instr ins;
};

struct Edge {
  std::uint32_t block = 0;  ///< successor block index
  EdgeKind kind = EdgeKind::FallThrough;
};

/// A call instruction inside a block (calls do not terminate blocks).
struct CallSite {
  std::uint32_t instr = 0;   ///< index into Cfg::instructions()
  std::uint32_t off = 0;     ///< module-relative word offset
  std::uint32_t target = 0;  ///< absolute word address (module-relative for
                             ///< Internal; 0 for Computed)
  CallKind kind = CallKind::Internal;
};

struct BasicBlock {
  std::uint32_t first = 0;  ///< index of the first instruction
  std::uint32_t count = 0;  ///< number of instructions
  std::uint32_t start_off = 0;
  std::uint32_t end_off = 0;  ///< one past the last word of the block
  std::vector<Edge> succs;
  std::vector<std::uint32_t> preds;
  bool reachable = false;
  bool is_entry = false;
  bool exits = false;  ///< ends by leaving the module (ret / jmp restore_ret /
                       ///< jmp ijmp_check / out-of-module transfer)
};

/// One declared entry point as the verifier sees it (absolute address).
struct EntryInfo {
  std::uint32_t abs = 0;
  std::uint32_t off = 0;  ///< module-relative (0 when out of range)
  bool in_range = false;
  bool on_boundary = false;
};

class Cfg {
 public:
  /// Decode `words` (module loaded at absolute word address `origin`) and
  /// build the graph. `entries` are absolute entry-point addresses, as
  /// passed to sfi::verify().
  static Cfg build(std::span<const std::uint16_t> words, std::uint32_t origin,
                   std::span<const std::uint32_t> entries, const sfi::StubTable& stubs);

  [[nodiscard]] std::uint32_t origin() const { return origin_; }
  [[nodiscard]] std::uint32_t size() const { return size_; }  ///< module words
  [[nodiscard]] const std::vector<InstrAt>& instructions() const { return instrs_; }
  [[nodiscard]] const std::vector<BasicBlock>& blocks() const { return blocks_; }
  [[nodiscard]] const std::vector<CallSite>& calls() const { return calls_; }
  [[nodiscard]] const std::vector<EntryInfo>& entries() const { return entries_; }

  /// Offset of the first undecodable word, if the decode stopped early.
  [[nodiscard]] std::optional<std::uint32_t> invalid_off() const { return invalid_off_; }

  /// True if `off` is the start of a decoded instruction.
  [[nodiscard]] bool is_boundary(std::uint32_t off) const {
    return off < size_ && off_to_instr_[off] >= 0;
  }
  /// Index of the instruction starting at `off`, if any.
  [[nodiscard]] std::optional<std::uint32_t> instr_at(std::uint32_t off) const {
    if (!is_boundary(off)) return std::nullopt;
    return static_cast<std::uint32_t>(off_to_instr_[off]);
  }
  /// Block containing instruction `idx`.
  [[nodiscard]] std::uint32_t block_of_instr(std::uint32_t idx) const {
    return instr_block_[idx];
  }
  /// Block whose first instruction is at `off`, if `off` is a block leader.
  [[nodiscard]] std::optional<std::uint32_t> block_at(std::uint32_t off) const;

  [[nodiscard]] std::uint32_t reachable_blocks() const;

 private:
  std::uint32_t origin_ = 0;
  std::uint32_t size_ = 0;
  std::vector<InstrAt> instrs_;
  std::vector<BasicBlock> blocks_;
  std::vector<CallSite> calls_;
  std::vector<EntryInfo> entries_;
  std::vector<std::int32_t> off_to_instr_;   // word offset -> instr index or -1
  std::vector<std::uint32_t> instr_block_;   // instr index -> block index
  std::optional<std::uint32_t> invalid_off_;
};

}  // namespace harbor::analysis
