#pragma once
// Worst-case stack-depth analysis over the CFG.
//
// For every function (declared entry points plus internal call targets) the
// analysis computes the maximum number of bytes the module can have live on
// the stack: push/pop contribute ±1 and every call contributes the 2-byte
// return address plus the callee's own worst case. Under Harbor's SFI
// runtime a frame's return address migrates from the run-time stack to the
// safe stack (harbor_save_ret) for the duration of the callee, so the same
// figure bounds the module's combined run-time + safe-stack occupancy; it
// is the number harbor-lint checks against the safe-stack capacity and the
// stack region of runtime::Layout (the run-time incarnation of the paper's
// stack_bound check).
//
// The analysis is cycle-safe in both graphs: recursion in the call graph
// and any loop with a positive net push gain report kUnbounded instead of
// diverging. Calls into trusted stubs and cross-domain calls count only
// their 2-byte return address — the stubs spill through trusted scratch
// RAM, and a cross-domain callee runs under its own domain's stack bound.

#include <cstdint>
#include <map>

#include "analysis/cfg.h"

namespace harbor::analysis {

inline constexpr std::uint32_t kUnboundedDepth = 0xffffffffu;

struct StackDepth {
  std::uint32_t bytes = 0;  ///< worst case; kUnboundedDepth if unbounded

  [[nodiscard]] bool bounded() const { return bytes != kUnboundedDepth; }
};

class StackAnalysis {
 public:
  static StackAnalysis run(const Cfg& cfg);

  /// Worst-case depth of the function whose body starts at module-relative
  /// offset `off` (a declared entry or internal call target). Unknown
  /// offsets report 0.
  [[nodiscard]] StackDepth function_depth(std::uint32_t off) const {
    const auto it = depth_.find(off);
    return it == depth_.end() ? StackDepth{} : it->second;
  }

  /// All analyzed functions: body start offset -> worst-case depth.
  [[nodiscard]] const std::map<std::uint32_t, StackDepth>& functions() const {
    return depth_;
  }

 private:
  std::map<std::uint32_t, StackDepth> depth_;
};

}  // namespace harbor::analysis
