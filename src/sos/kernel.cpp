#include "sos/kernel.h"

#include <algorithm>
#include <stdexcept>

#include "asm/builder.h"
#include "ota/image.h"
#include "avr/memory.h"
#include "avr/ports.h"
#include "sfi/rewriter.h"
#include "sfi/verifier.h"

namespace harbor::sos {

using namespace harbor::assembler;
using runtime::CallResult;
using runtime::Testbed;
namespace ports = avr::ports;

namespace {
// Host-syscall ports (free slots in the IO map; writable by modules, which
// matches SOS: any module may post messages or look up subscriptions).
constexpr std::uint8_t kSysA = 0x1d;
constexpr std::uint8_t kSysB = 0x1e;
constexpr std::uint8_t kSysTrig = 0x1f;
constexpr std::uint8_t kSysSubscribe = 1;
constexpr std::uint8_t kSysPost = 2;
}  // namespace

Kernel::Kernel(runtime::Mode mode, runtime::Layout layout) : tb_(mode, layout) {
  install_syscall_services();
  fill_default_jump_tables();
}

void Kernel::install_syscall_services() {
  // Guest-side service stubs (trusted code, reached through the kernel's
  // jump table like any other export).
  Assembler a(tb_.module_area());
  const std::uint32_t subscribe_impl = a.here();
  a.out(kSysA, r24);   // domain
  a.out(kSysB, r22);   // slot
  a.ldi(r24, kSysSubscribe);
  a.out(kSysTrig, r24);
  a.in(r24, kSysA);    // entry address written back by the host
  a.in(r25, kSysB);
  a.ret();
  const std::uint32_t post_impl = a.here();
  a.out(kSysA, r24);   // destination domain
  a.out(kSysB, r22);   // message id
  a.ldi(r24, kSysPost);
  a.out(kSysTrig, r24);
  a.clr(r24);
  a.clr(r25);
  a.ret();
  const Program p = a.assemble();
  tb_.device().flash().load(p.words, p.origin);
  load_cursor_ = p.end();

  tb_.set_jt_entry(ports::kTrustedDomain, sys_slots::kPost, post_impl);
  tb_.set_jt_entry(ports::kTrustedDomain, sys_slots::kSubscribe, subscribe_impl);
  tb_.set_jt_entry(ports::kTrustedDomain, sys_slots::kUndefined,
                   tb_.runtime().symbol("ker_undefined"));

  // Host side of the syscalls.
  auto& io = tb_.device().data().io();
  io.on_write(kSysTrig, [this](std::uint8_t, std::uint8_t id) {
    auto& io2 = tb_.device().data().io();
    const std::uint8_t a0 = io2.raw(kSysA);
    const std::uint8_t b0 = io2.raw(kSysB);
    if (id == kSysSubscribe) {
      const std::uint32_t entry = subscribe(static_cast<memmap::DomainId>(a0 & 7), b0);
      io2.set_raw(kSysA, static_cast<std::uint8_t>(entry & 0xff));
      io2.set_raw(kSysB, static_cast<std::uint8_t>(entry >> 8));
    } else if (id == kSysPost) {
      post(static_cast<memmap::DomainId>(a0 & 7), b0);
    }
  });
}

void Kernel::fill_default_jump_tables() {
  const auto& L = tb_.layout();
  const std::uint32_t undef = tb_.runtime().symbol("ker_undefined");
  for (std::uint8_t d = 0; d < L.domains; ++d) {
    for (std::uint32_t s = 0; s < L.jt_entries(); ++s) {
      // Keep the kernel's own service entries.
      if (d == ports::kTrustedDomain &&
          (s <= runtime::kernel_slots::kChangeOwn || s == sys_slots::kPost ||
           s == sys_slots::kSubscribe || s == sys_slots::kUndefined ||
           s == Testbed::kNopSlot))
        continue;
      tb_.set_jt_entry(d, s, undef);
    }
  }
}

std::vector<Kernel::FlashCandidate> Kernel::flash_candidates() const {
  std::vector<FlashCandidate> out;
  out.reserve(flash_holes_.size() + 1);
  for (std::size_t i = 0; i < flash_holes_.size(); ++i)
    out.push_back({flash_holes_[i].origin, flash_holes_[i].words, static_cast<int>(i)});
  out.push_back({load_cursor_, 0xFFFF'FFFFu, -1});
  return out;
}

void Kernel::claim_flash(const FlashCandidate& c, std::uint32_t end) {
  if (c.hole < 0) {
    load_cursor_ = end;
    return;
  }
  FlashHole& h = flash_holes_[static_cast<std::size_t>(c.hole)];
  const std::uint32_t used = end - c.origin;
  if (used >= h.words) {
    flash_holes_.erase(flash_holes_.begin() + c.hole);
  } else {
    h.origin += used;
    h.words -= used;
  }
}

void Kernel::release_flash(std::uint32_t origin, std::uint32_t end) {
  if (end <= origin) return;
  if (end == load_cursor_) {
    // Touching the frontier: rewind the cursor instead of keeping a hole,
    // then fold in any hole that now touches the frontier too.
    load_cursor_ = origin;
    while (!flash_holes_.empty() &&
           flash_holes_.back().origin + flash_holes_.back().words == load_cursor_) {
      load_cursor_ = flash_holes_.back().origin;
      flash_holes_.pop_back();
    }
    return;
  }
  const FlashHole h{origin, end - origin};
  auto it = std::lower_bound(
      flash_holes_.begin(), flash_holes_.end(), h,
      [](const FlashHole& a, const FlashHole& b) { return a.origin < b.origin; });
  it = flash_holes_.insert(it, h);
  if (std::next(it) != flash_holes_.end() &&
      it->origin + it->words == std::next(it)->origin) {
    it->words += std::next(it)->words;
    it = std::prev(flash_holes_.erase(std::next(it)));
  }
  if (it != flash_holes_.begin() &&
      std::prev(it)->origin + std::prev(it)->words == it->origin) {
    std::prev(it)->words += it->words;
    flash_holes_.erase(it);
  }
}

memmap::DomainId Kernel::load(const ModuleImage& image,
                              std::optional<memmap::DomainId> want) {
  memmap::DomainId domain = 0xff;
  if (want) {
    if (*want > 6 || modules_.count(*want)) throw std::runtime_error("sos: domain unavailable");
    domain = *want;
    // Explicitly loading into a quarantined domain is a manual revive
    // decision; the old tenant's record is discarded.
    quarantine_.erase(domain);
  } else {
    for (memmap::DomainId d = 0; d < 7; ++d) {
      if (!modules_.count(d) && !quarantine_.count(d)) {
        domain = d;
        break;
      }
    }
    if (domain == 0xff) throw std::runtime_error("sos: no free protection domain");
  }

  LoadedModule m;
  m.name = image.name;
  m.domain = domain;

  // Allocate module state *before* the image is prepared (SOS: the kernel
  // calls ker_malloc(size, id) during registration; ownership goes to the
  // module's domain). The address is patched into the image's state relocs,
  // making the state pointer a constant the store-elision analysis can
  // bound — and it is stable for the module's lifetime: only the kernel
  // frees it (at unload), and elision is forfeited for any module that
  // could reach the free/change-ownership services itself.
  if (!image.state_relocs.empty() && image.state_size == 0)
    throw std::runtime_error("sos: module '" + image.name +
                             "' has state relocs but no state block");
  if (image.state_size > 0) {
    const CallResult r =
        tb_.malloc(image.state_size, memmap::kTrustedDomain, domain);
    if (r.faulted || r.value == 0)
      throw std::runtime_error("sos: state allocation failed for '" + image.name + "'");
    m.state_ptr = r.value;
  }

  std::uint32_t claimed_begin = 0, claimed_end = 0;
  try {
    if (mode() == runtime::Mode::Sfi) {
      sfi::RewriteInput in;
      in.words = image.code;
      patch_state_relocs(in.words, image.state_relocs, m.state_ptr);
      for (const Export& e : image.exports) in.entries.push_back(e.offset);
      for (const std::uint32_t e : image.extra_entries) in.entries.push_back(e);
      const sfi::StubTable stubs = sfi::StubTable::from_runtime(tb_.runtime());
      sfi::ElisionPolicy policy;
      if (elide_stores_) {
        policy.enable = true;
        // The register-file window is passed unconditionally by the store
        // checkers; the state block is this module's own memory.
        policy.safe_regions.push_back({0, avr::DataSpace::kIoBase - 1});
        if (image.state_size > 0)
          policy.safe_regions.push_back(
              {m.state_ptr,
               static_cast<std::uint16_t>(m.state_ptr + image.state_size - 1)});
        policy.deny_regions.push_back(
            {avr::DataSpace::kIoBase, avr::DataSpace::kSramBase - 1});
        policy.forbidden_entries = {
            tb_.layout().jt_entry(memmap::kTrustedDomain, runtime::kernel_slots::kFree),
            tb_.layout().jt_entry(memmap::kTrustedDomain,
                                  runtime::kernel_slots::kChangeOwn)};
        // harbor_icall_check refuses jt dispatch into free/change-own, so
        // the analysis need not forfeit elision on every computed call.
        policy.computed_calls_screened = true;
      }
      // Rewritten size is only known per origin, so try each reclaimed hole
      // (ascending) before falling back to the bump cursor — the fallback
      // candidate always fits.
      sfi::RewriteResult res;
      for (const FlashCandidate& cand : flash_candidates()) {
        res = sfi::rewrite(in, stubs, cand.origin, policy);
        if (res.program.end() - res.program.origin <= cand.capacity) {
          claim_flash(cand, res.program.end());
          claimed_begin = res.program.origin;
          claimed_end = res.program.end();
          break;
        }
      }
      const sfi::VerifyResult v =
          sfi::verify(res.program.words, res.program.origin,
                      [&] {
                        std::vector<std::uint32_t> abs;
                        for (const std::uint32_t e : in.entries) abs.push_back(res.map_offset(e));
                        return abs;
                      }(),
                      stubs, policy, res.manifest);
      if (!v.ok)
        throw std::runtime_error("sos: module '" + image.name + "' rejected by verifier: " +
                                 v.reason);
      tb_.load_module_image(res.program, domain);
      m.base = res.program.origin;
      m.end = res.program.end();
      m.manifest = res.manifest;
      for (const Export& e : image.exports) m.export_addr[e.slot] = res.map_offset(e.offset);
    } else {
      // UMPU/None: the binary runs unmodified; the loader only rebases
      // internal absolute references (and patches the state relocs).
      assembler::Program p;
      for (const FlashCandidate& cand : flash_candidates()) {
        p.origin = cand.origin;
        p.words = relocate_image(image, cand.origin);
        if (p.end() - p.origin <= cand.capacity) {
          claim_flash(cand, p.end());
          claimed_begin = p.origin;
          claimed_end = p.end();
          break;
        }
      }
      patch_state_relocs(p.words, image.state_relocs, m.state_ptr);
      tb_.load_module_image(p, domain);
      m.base = p.origin;
      m.end = p.end();
      for (const Export& e : image.exports) m.export_addr[e.slot] = p.origin + e.offset;
    }
  } catch (...) {
    // A rejected image must not leak the state block — or the flash extent —
    // it will never use.
    if (m.state_ptr != 0) tb_.free(m.state_ptr, memmap::kTrustedDomain);
    release_flash(claimed_begin, claimed_end);
    throw;
  }

  // Link the exports into the domain's jump table.
  for (const auto& [slot, addr] : m.export_addr) tb_.set_jt_entry(domain, slot, addr);

  modules_.emplace(domain, m);
  images_[domain] = image;
  if (tracer_) tracer_->sos_load(domain, m.base);
  post(domain, msg::kInit, m.state_ptr);
  return domain;
}

void Kernel::unload(memmap::DomainId d) {
  const auto it = modules_.find(d);
  if (it == modules_.end()) return;

  // Reclaim every heap segment the domain owns: walk the guest memory map
  // and free as the trusted domain.
  const auto& L = tb_.layout();
  const memmap::Config cfg = L.memmap_config();
  memmap::MemoryMap view(cfg);
  view.load_table(tb_.guest_map_table());
  for (std::uint32_t b = L.heap_first_block();
       b < L.heap_first_block() + L.heap_block_count(); ++b) {
    const memmap::BlockPerm p = view.block(b);
    if (p.start && p.owner == d && p != memmap::free_block()) {
      const CallResult r = tb_.free(view.addr_of_block(b), memmap::kTrustedDomain);
      if (r.faulted || r.value != 0)
        throw std::runtime_error("sos: unload could not reclaim a segment");
    }
  }

  // Unlink the exports and retire the domain's code region.
  const std::uint32_t undef = tb_.runtime().symbol("ker_undefined");
  for (const auto& [slot, addr] : it->second.export_addr) tb_.set_jt_entry(d, slot, undef);
  if (auto* fab = tb_.fabric()) fab->set_code_region(d, {0, 0});

  // Drop queued messages addressed to the departing module.
  for (auto qit = queue_.begin(); qit != queue_.end();)
    qit = qit->dst == d ? queue_.erase(qit) : std::next(qit);
  // Reclaim the module's flash extent and its dispatch trampoline: an
  // unload/reload cycle must be flash-neutral or a long soak walks the
  // cursor out of rjmp reach.
  release_flash(it->second.base, it->second.end);
  const auto tkey = std::make_pair(d, ModuleImage::kHandlerSlot);
  if (const auto tit = dispatch_tramp_.find(tkey); tit != dispatch_tramp_.end()) {
    release_flash(tit->second.origin, tit->second.end);
    dispatch_tramp_.erase(tit);
  }
  modules_.erase(it);
  images_.erase(d);
  // A domain given back to the kernel carries no history: the next tenant
  // must not inherit the previous module's restart record.
  restarts_.erase(d);
  sup_.erase(d);
  if (tracer_) tracer_->sos_unload(d);
}

memmap::DomainId Kernel::restart(memmap::DomainId d, const ModuleImage& image) {
  // A restart is the same tenant with fresh state, so its restart count
  // survives the internal unload (unlike an explicit unload+load).
  const int keep_restarts = restart_count(d);
  unload(d);
  const memmap::DomainId dom = load(image, d);
  if (keep_restarts) restarts_[dom] = keep_restarts;
  return dom;
}

const LoadedModule* Kernel::module(memmap::DomainId d) const {
  const auto it = modules_.find(d);
  return it == modules_.end() ? nullptr : &it->second;
}

const LoadedModule* Kernel::module(const std::string& name) const {
  for (const auto& [d, m] : modules_)
    if (m.name == name) return &m;
  return nullptr;
}

void Kernel::post(memmap::DomainId dst, std::uint8_t msg, std::uint16_t arg) {
  if (quarantine_.count(dst)) {
    // Quarantined domains keep their mail: dead-letter, don't drop, so a
    // revive can replay what arrived while the module was down.
    dead_letters_.push_back({dst, msg, arg});
    if (tracer_) tracer_->sos_dead_letter(dst, msg);
    return;
  }
  queue_.push_back({dst, msg, arg});
}

std::uint32_t Kernel::subscribe(memmap::DomainId domain, std::uint32_t slot) const {
  const auto it = modules_.find(domain);
  if (it != modules_.end() && it->second.export_addr.count(slot))
    return tb_.layout().jt_entry(domain, slot);
  // Absent module/slot: the caller gets the trusted error-stub entry; a
  // call through it "succeeds" and returns the invalid result 0xFFFF
  // (the paper's failed cross-domain call, §1.2).
  return tb_.layout().jt_entry(avr::ports::kTrustedDomain, sys_slots::kUndefined);
}

int Kernel::backoff_rounds(int streak) const {
  if (streak <= 0 || supervisor_.backoff_base <= 0) return 0;
  const int shift = streak - 1 > 30 ? 30 : streak - 1;
  const long long r = static_cast<long long>(supervisor_.backoff_base) << shift;
  return static_cast<int>(r < supervisor_.backoff_cap ? r : supervisor_.backoff_cap);
}

void Kernel::quarantine_domain(memmap::DomainId d, int streak) {
  QuarantineRecord rec;
  rec.image = images_.at(d);
  rec.crash_streak = streak;
  // Mail already queued for the domain moves to the dead-letter queue
  // before unload() (which would drop it).
  for (auto qit = queue_.begin(); qit != queue_.end();) {
    if (qit->dst == d) {
      dead_letters_.push_back(*qit);
      if (tracer_) tracer_->sos_dead_letter(d, qit->msg);
      qit = queue_.erase(qit);
    } else {
      ++qit;
    }
  }
  unload(d);
  quarantine_.emplace(d, std::move(rec));
  if (tracer_) tracer_->sos_quarantine(d, streak);
}

memmap::DomainId Kernel::revive(memmap::DomainId d) {
  const auto it = quarantine_.find(d);
  if (it == quarantine_.end()) throw std::runtime_error("sos: domain is not quarantined");
  const ModuleImage img = it->second.image;
  quarantine_.erase(it);
  const memmap::DomainId dom = load(img, d);  // posts the fresh kInit
  for (auto dit = dead_letters_.begin(); dit != dead_letters_.end();) {
    if (dit->dst == d) {
      queue_.push_back(*dit);
      dit = dead_letters_.erase(dit);
    } else {
      ++dit;
    }
  }
  return dom;
}

std::vector<DispatchRecord> Kernel::run_pending(int max_dispatches) {
  std::vector<DispatchRecord> log;
  // One scheduler round per call even if nothing dispatches, so the
  // backoff clock of an otherwise idle system still advances.
  ++round_;
  std::deque<PendingMessage> deferred;
  while (!queue_.empty() && static_cast<int>(log.size()) < max_dispatches) {
    const PendingMessage pm = queue_.front();
    queue_.pop_front();
    const auto it = modules_.find(pm.dst);
    if (it == modules_.end()) continue;  // module gone: drop

    // Backoff gate. The kInit a restart posts is exempt — module (re)init
    // is part of the restart decision, not new work for a suspect domain.
    auto& sv = sup_[pm.dst];
    if (pm.msg != msg::kInit && round_ < sv.backoff_until) {
      if (tracer_)
        tracer_->sos_backoff_defer(pm.dst, pm.msg,
                                   static_cast<int>(sv.backoff_until - round_));
      deferred.push_back(pm);
      continue;
    }
    if (pm.msg != msg::kInit && sv.backoff_until != 0 && sv.crash_streak > 0) {
      // Backoff expired: this dispatch is the probe that decides whether
      // the domain has recovered.
      sv.backoff_until = 0;
      if (tracer_) tracer_->sos_probe(pm.dst, pm.msg);
    }
    const LoadedModule& m = it->second;

    // Dispatch trampoline: a trusted cross-domain call into the module's
    // handler entry (slot 0 of its jump table).
    const auto key = std::make_pair(pm.dst, ModuleImage::kHandlerSlot);
    auto tit = dispatch_tramp_.find(key);
    if (tit == dispatch_tramp_.end()) {
      const std::uint32_t entry = tb_.layout().jt_entry(pm.dst, ModuleImage::kHandlerSlot);
      assembler::Program p;
      for (const FlashCandidate& cand : flash_candidates()) {
        Assembler a(cand.origin);
        if (mode() == runtime::Mode::Sfi) {
          // The kernel's outgoing calls into modules go through the software
          // cross-domain stub, exactly like rewritten module code.
          a.ldi16(r30, static_cast<std::uint16_t>(entry));
          a.call_abs(tb_.runtime().symbol("harbor_cross_call"));
        } else {
          a.call_abs(entry);
        }
        a.brk();
        p = a.assemble();
        if (p.end() - p.origin <= cand.capacity) {
          claim_flash(cand, p.end());
          break;
        }
      }
      tb_.device().flash().load(p.words, p.origin);
      tit = dispatch_tramp_.emplace(key, TrampRecord{p.origin, p.end()}).first;
    }

    Testbed::GuestArgs args;
    args.r24 = pm.msg;
    args.r22 = pm.arg;
    args.r20 = m.state_ptr;
    if (tracer_) tracer_->sos_dispatch_begin(pm.dst, pm.msg);
    DispatchRecord rec{pm.dst, pm.msg, pm.arg,
                       tb_.run_trampoline(tit->second.origin, args, avr::ports::kTrustedDomain)};
    if (tracer_)
      tracer_->sos_dispatch_end(pm.dst, pm.msg, rec.result.cycles, rec.result.faulted);
    log.push_back(rec);
    ++round_;

    if (!rec.result.faulted) {
      // A clean regular dispatch marks the domain healthy again. A clean
      // kInit does not: it is posted by the restart itself, so it proves
      // nothing about the crash that triggered the restart.
      if (pm.msg != msg::kInit) {
        auto& healthy = sup_[pm.dst];
        healthy.crash_streak = 0;
        healthy.backoff_until = 0;
      }
    } else if (supervisor_.auto_restart && images_.count(pm.dst)) {
      // §2.1: the stable kernel restarts the corrupted module with fresh
      // state; messages already queued for it survive the restart. The
      // supervisor bounds this: consecutive crashes escalate the backoff
      // and, past the restart budget, quarantine the domain.
      const int streak = ++sup_[pm.dst].crash_streak;
      if (supervisor_.restart_budget >= 0 && streak > supervisor_.restart_budget) {
        quarantine_domain(pm.dst, streak);
        continue;
      }
      const ModuleImage img = images_.at(pm.dst);
      std::deque<PendingMessage> keep;
      for (const auto& q : queue_)
        if (q.dst == pm.dst && q.msg != msg::kInit) keep.push_back(q);
      restart(pm.dst, img);  // unload clears sup_[dst]; re-arm below
      for (const auto& q : keep) queue_.push_back(q);
      ++restarts_[pm.dst];
      const int off = backoff_rounds(streak);
      auto& sv2 = sup_[pm.dst];
      sv2.crash_streak = streak;
      sv2.backoff_until = round_ + static_cast<std::uint64_t>(off);
      if (tracer_) tracer_->sos_restart(pm.dst, restarts_[pm.dst], off);
    }
  }
  // Deferred messages go back to the front in their original order.
  for (auto rit = deferred.rbegin(); rit != deferred.rend(); ++rit) queue_.push_front(*rit);
  return log;
}

ota::RecoveryResult Kernel::recover_store(ota::ModuleStore& store) {
  const std::uint64_t budget =
      std::max<std::uint64_t>(tb_.cycle_budget() / kCyclesPerFlashOp, 1);
  return store.recover(budget);
}

memmap::DomainId Kernel::load_from_store(ota::ModuleStore& store,
                                         std::optional<memmap::DomainId> want) {
  const std::optional<std::vector<std::uint16_t>> words = store.committed_image();
  if (!words)
    throw std::runtime_error("sos: module store has no committed image (state " +
                             std::string(ota::store_state_name(store.last_recovery().state)) +
                             ")");
  const std::optional<ModuleImage> image = ota::deserialize_image(*words);
  if (!image)
    throw std::runtime_error("sos: committed store image failed to deserialize");
  return load(*image, want);
}

Kernel::HostState Kernel::host_state() const {
  HostState s;
  s.modules = modules_;
  s.images = images_;
  s.restarts = restarts_;
  s.supervisor = supervisor_;
  s.sup = sup_;
  s.quarantine = quarantine_;
  s.dead_letters = dead_letters_;
  s.round = round_;
  s.elide_stores = elide_stores_;
  s.queue = queue_;
  s.load_cursor = load_cursor_;
  s.flash_holes = flash_holes_;
  s.dispatch_tramp = dispatch_tramp_;
  return s;
}

void Kernel::restore_host_state(const HostState& s) {
  modules_ = s.modules;
  images_ = s.images;
  restarts_ = s.restarts;
  supervisor_ = s.supervisor;
  sup_ = s.sup;
  quarantine_ = s.quarantine;
  dead_letters_ = s.dead_letters;
  round_ = s.round;
  elide_stores_ = s.elide_stores;
  queue_ = s.queue;
  load_cursor_ = s.load_cursor;
  flash_holes_ = s.flash_holes;
  dispatch_tramp_ = s.dispatch_tramp;
}

}  // namespace harbor::sos
