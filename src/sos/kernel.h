#pragma once
// Mini-SOS kernel: dynamically loads module binaries into protection
// domains, links their exports into per-domain jump tables, allocates
// module state through the guest allocator (owned by the module's domain),
// and dispatches messages to module handlers through real cross-domain
// calls.
//
// Substitutions vs. the real SOS (see DESIGN.md §2): the message queue and
// scheduler loop are host-orchestrated (each dispatch enters guest code
// through the protection machinery); `post`/`subscribe` are exposed to
// guest code as kernel jump-table entries backed by host syscall ports.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "ota/store.h"
#include "runtime/testbed.h"
#include "sfi/elision.h"
#include "sos/module.h"
#include "trace/tracer.h"

namespace harbor::sos {

/// Kernel jump-table slots beyond the allocator trio (see
/// runtime::kernel_slots for 0-2).
namespace sys_slots {
inline constexpr std::uint32_t kPost = 3;       ///< post(dst r24, msg r22) -> status
inline constexpr std::uint32_t kSubscribe = 4;  ///< subscribe(domain r24, slot r22) -> fn addr
inline constexpr std::uint32_t kUndefined = 6;  ///< error stub: returns 0xFFFF
}  // namespace sys_slots

struct LoadedModule {
  std::string name;
  memmap::DomainId domain = 0;
  std::uint32_t base = 0;   ///< word address of the (rewritten) image
  std::uint32_t end = 0;
  std::uint16_t state_ptr = 0;
  std::map<std::uint32_t, std::uint32_t> export_addr;  ///< slot -> word address
  /// SFI mode: proof claims for the stores left raw in the loaded image
  /// (every one re-proved by the verifier before admission).
  sfi::ProofManifest manifest;
};

struct PendingMessage {
  memmap::DomainId dst;
  std::uint8_t msg;
  std::uint16_t arg;
};

struct DispatchRecord {
  memmap::DomainId domain;
  std::uint8_t msg;
  std::uint16_t arg;
  runtime::CallResult result;
};

/// Supervision policy for faulting modules (paper §2.1, made bounded).
/// A faulting dispatch restarts the module with fresh state, but restarts
/// are budgeted: after `restart_budget` consecutive crashes the domain is
/// quarantined (module unloaded, messages dead-lettered) instead of
/// crash-looping forever. Between a restart and the next dispatch the
/// domain backs off exponentially, measured in dispatch rounds.
struct SupervisorConfig {
  bool auto_restart = false;
  /// Consecutive crashes tolerated before quarantine; < 0 = unbounded
  /// (the legacy crash-loop policy, kept only for experiments).
  int restart_budget = 3;
  /// Backoff after the n-th consecutive crash: min(base << (n-1), cap)
  /// dispatch rounds. A round advances per dispatch and once per
  /// run_pending call, so an idle system still drains its backoff.
  int backoff_base = 1;
  int backoff_cap = 64;
};

class Kernel {
 public:
  explicit Kernel(runtime::Mode mode, runtime::Layout layout = {});

  /// Load a module into the lowest free domain (or `want` if given).
  /// In SFI mode the image is rewritten and verified first; a verifier
  /// rejection throws std::runtime_error and nothing is loaded.
  memmap::DomainId load(const ModuleImage& image,
                        std::optional<memmap::DomainId> want = std::nullopt);

  /// Unload a module: every memory segment the domain owns is reclaimed
  /// (the kernel, as the trusted domain, may free anything — paper §2.4),
  /// its jump-table entries revert to the error stub, queued messages are
  /// dropped, and the domain becomes reusable. This is the paper's §2.1
  /// recovery story: "A stable kernel can always ensure a clean re-start
  /// of user modules when corruption is detected."
  void unload(memmap::DomainId d);

  /// Convenience recovery: unload and immediately reload a (typically
  /// fixed) image into the same domain.
  memmap::DomainId restart(memmap::DomainId d, const ModuleImage& image);

  /// Automatic recovery policy: when a dispatch faults, unload the
  /// offending module and reload its image (fresh state), as the paper's
  /// §2.1 envisions. Off by default; restarts are counted per domain and
  /// bounded by the supervisor's restart budget (see SupervisorConfig).
  void set_auto_restart(bool on) { supervisor_.auto_restart = on; }
  void set_supervisor(const SupervisorConfig& cfg) { supervisor_ = cfg; }
  [[nodiscard]] const SupervisorConfig& supervisor() const { return supervisor_; }
  [[nodiscard]] int restart_count(memmap::DomainId d) const {
    const auto it = restarts_.find(d);
    return it == restarts_.end() ? 0 : it->second;
  }
  /// Consecutive faulted dispatches since the last clean one (what the
  /// supervisor weighs against the restart budget).
  [[nodiscard]] int crash_streak(memmap::DomainId d) const {
    const auto it = sup_.find(d);
    return it == sup_.end() ? 0 : it->second.crash_streak;
  }
  [[nodiscard]] std::uint64_t dispatch_round() const { return round_; }

  // --- quarantine ---
  [[nodiscard]] bool quarantined(memmap::DomainId d) const { return quarantine_.count(d) != 0; }
  /// Messages addressed to a quarantined domain land here instead of being
  /// dropped; revive() re-posts them.
  [[nodiscard]] const std::deque<PendingMessage>& dead_letters() const { return dead_letters_; }
  /// Lift a quarantine: reload the quarantined module image into its old
  /// domain (fresh state, crash streak reset) and re-queue its dead
  /// letters. Throws std::runtime_error if `d` is not quarantined.
  memmap::DomainId revive(memmap::DomainId d);

  [[nodiscard]] const LoadedModule* module(memmap::DomainId d) const;
  [[nodiscard]] const LoadedModule* module(const std::string& name) const;

  /// Queue a message for a module (host-side API; modules use the
  /// ker_post jump-table entry, which funnels here through a syscall).
  void post(memmap::DomainId dst, std::uint8_t msg, std::uint16_t arg = 0);

  /// Dispatch queued messages until the queue drains (new messages posted
  /// by handlers are processed too, up to `max_dispatches`). Returns the
  /// dispatch log.
  std::vector<DispatchRecord> run_pending(int max_dispatches = 256);

  /// Resolve an exported function: word address of the jump-table entry,
  /// or the trusted error-stub entry (whose call returns 0xFFFF) when the
  /// module or slot is absent — exactly the failure mode of the paper's
  /// Surge anecdote.
  [[nodiscard]] std::uint32_t subscribe(memmap::DomainId domain, std::uint32_t slot) const;

  [[nodiscard]] runtime::Testbed& sys() { return tb_; }
  [[nodiscard]] const runtime::Testbed& sys() const { return tb_; }
  [[nodiscard]] runtime::Mode mode() const { return tb_.mode(); }

  // --- OTA module store (DESIGN.md §11) ---
  /// Cost model for journal replay at boot: one flash read/program/erase is
  /// worth this many cycles against the testbed's cycle budget.
  static constexpr std::uint64_t kCyclesPerFlashOp = 64;

  /// Reboot-time recovery of an OTA store, bounded by the same cycle budget
  /// that watchdogs guest code (Testbed::set_cycle_budget): a corrupted
  /// journal surfaces as StoreState::Watchdog / FaultKind::Watchdog instead
  /// of a boot that never completes.
  ota::RecoveryResult recover_store(ota::ModuleStore& store);

  /// Install the store's committed image into a domain through the normal
  /// load path — memory-map ownership and jump-table entries are re-derived
  /// from the committed bytes, never from pre-cut RAM state. Throws
  /// std::runtime_error when the store has no valid committed image.
  memmap::DomainId load_from_store(ota::ModuleStore& store,
                                   std::optional<memmap::DomainId> want = std::nullopt);

  /// Observability: when a tracer is registered, module lifecycle and
  /// message dispatch are recorded as SOS events (see DESIGN.md §8). The
  /// kernel does not own the tracer; pass nullptr to stop recording.
  void set_tracer(trace::Tracer* t) { tracer_ = t; }
  [[nodiscard]] trace::Tracer* tracer() const { return tracer_; }

  /// SFI store-check elision (DESIGN.md §13): on by default. When enabled,
  /// loads prove stores into the module's own state block (and the
  /// register-file window) safe and leave them raw; the verifier re-proves
  /// every claim before admission. Affects subsequent loads only.
  void set_store_elision(bool on) { elide_stores_ = on; }
  [[nodiscard]] bool store_elision() const { return elide_stores_; }

  /// Per-domain supervisor state (cleared on unload: a fresh tenant starts
  /// with a clean record).
  struct Supervision {
    int crash_streak = 0;
    std::uint64_t backoff_until = 0;  ///< dispatch round when the domain may run again
  };
  struct QuarantineRecord {
    ModuleImage image;  ///< for revive()
    int crash_streak = 0;
  };

  /// A reclaimed module-flash extent, reusable by later loads. Without
  /// reclamation every unload/reload cycle leaks flash words and a
  /// long-horizon soak eventually pushes module bases beyond rjmp reach of
  /// their jump-table entries.
  struct FlashHole {
    std::uint32_t origin = 0;
    std::uint32_t words = 0;
  };
  /// One dispatch trampoline's flash extent (origin is what run_pending
  /// calls through; the full extent is reclaimed on unload).
  struct TrampRecord {
    std::uint32_t origin = 0;
    std::uint32_t end = 0;
  };

  /// Host-side kernel bookkeeping — everything System::Snapshot does NOT
  /// capture (that one is device state only). A (System::Snapshot,
  /// HostState) pair taken at a quiescent point is a complete fork point:
  /// the soak harness restores both to replay divergent futures from one
  /// soaked state (DESIGN.md §15).
  struct HostState {
    std::map<memmap::DomainId, LoadedModule> modules;
    std::map<memmap::DomainId, ModuleImage> images;
    std::map<memmap::DomainId, int> restarts;
    SupervisorConfig supervisor;
    std::map<memmap::DomainId, Supervision> sup;
    std::map<memmap::DomainId, QuarantineRecord> quarantine;
    std::deque<PendingMessage> dead_letters;
    std::uint64_t round = 0;
    bool elide_stores = true;
    std::deque<PendingMessage> queue;
    std::uint32_t load_cursor = 0;
    std::vector<FlashHole> flash_holes;
    std::map<std::pair<memmap::DomainId, std::uint32_t>, TrampRecord> dispatch_tramp;
  };
  [[nodiscard]] HostState host_state() const;
  void restore_host_state(const HostState& s);

 private:
  void install_syscall_services();
  void fill_default_jump_tables();
  [[nodiscard]] int backoff_rounds(int streak) const;
  void quarantine_domain(memmap::DomainId d, int streak);

  /// Placement candidates for a module image whose final size is only known
  /// after rewriting at a concrete origin: every reclaimed hole (ascending),
  /// then the bump cursor (unbounded capacity).
  struct FlashCandidate {
    std::uint32_t origin = 0;
    std::uint32_t capacity = 0;
    int hole = -1;  ///< index into flash_holes_, -1 = the cursor
  };
  [[nodiscard]] std::vector<FlashCandidate> flash_candidates() const;
  /// Commit a candidate for the extent [candidate.origin, end).
  void claim_flash(const FlashCandidate& c, std::uint32_t end);
  /// Return [origin, end) to the hole list (merging neighbours; an extent
  /// touching the cursor rewinds it instead).
  void release_flash(std::uint32_t origin, std::uint32_t end);

  runtime::Testbed tb_;
  trace::Tracer* tracer_ = nullptr;
  std::map<memmap::DomainId, LoadedModule> modules_;
  std::map<memmap::DomainId, ModuleImage> images_;  ///< for auto restart
  std::map<memmap::DomainId, int> restarts_;
  SupervisorConfig supervisor_;
  std::map<memmap::DomainId, Supervision> sup_;
  std::map<memmap::DomainId, QuarantineRecord> quarantine_;
  std::deque<PendingMessage> dead_letters_;
  std::uint64_t round_ = 0;  ///< dispatch rounds (backoff clock)
  bool elide_stores_ = true;
  std::deque<PendingMessage> queue_;
  std::uint32_t load_cursor_ = 0;      ///< next free flash word for modules
  /// Reclaimed flash extents below the cursor (sorted by origin, disjoint,
  /// non-adjacent); loads prefer these so unload/reload churn is flash-neutral.
  std::vector<FlashHole> flash_holes_;
  std::map<std::pair<memmap::DomainId, std::uint32_t>, TrampRecord> dispatch_tramp_;
};

}  // namespace harbor::sos
