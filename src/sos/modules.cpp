#include "sos/modules.h"

#include "asm/builder.h"
#include "avr/ports.h"
#include "runtime/runtime.h"
#include "sos/kernel.h"

// All modules are position independent: internal control flow uses
// rjmp/rcall/branches only; the only absolute targets are kernel jump-table
// entries. Registers: handler(msg r24, arg r23:r22, state r21:r20); r16/r17
// survive kernel cross-calls (the kernel routines never touch them).

namespace harbor::sos::modules {

using namespace harbor::assembler;
namespace ports = avr::ports;

namespace {
std::uint32_t kernel_entry(const runtime::Layout& L, std::uint32_t slot) {
  return L.jt_entry(ports::kTrustedDomain, slot);
}

void ret_ok(Assembler& a) {
  a.clr(r24);
  a.clr(r25);
  a.ret();
}
}  // namespace

ModuleImage blink() {
  Assembler a;
  ModuleImage m;
  m.name = "blink";
  m.state_size = 2;

  // handler: count timer messages into state[0], mirror to the debug port.
  auto not_timer = a.make_label();
  a.cpi(r24, msg::kTimer);
  a.brne(not_timer);
  // X = state, as a loader-patched constant (state reloc) rather than the
  // r21:r20 dispatch argument: a constant the elision analysis can bound.
  m.state_relocs.push_back(a.here());
  a.ldi(r26, 0);
  a.ldi(r27, 0);
  a.ld_x(r18);
  a.inc(r18);
  a.st_x(r18);
  a.out(ports::kDebugValLo, r18);
  ret_ok(a);
  a.bind(not_timer);
  ret_ok(a);

  const Program p = a.assemble();
  m.code = p.words;
  m.exports = {{ModuleImage::kHandlerSlot, 0}};
  return m;
}

ModuleImage tree_routing() {
  Assembler a;
  ModuleImage m;
  m.name = "tree_routing";

  // handler (offset 0): nothing to do.
  ret_ok(a);
  // get_hdr_size (exported as slot 1).
  const std::uint32_t get_hdr = a.here();
  a.ldi(r24, kTreeHdrSize);
  a.clr(r25);
  a.ret();

  const Program p = a.assemble();
  m.code = p.words;
  m.exports = {{ModuleImage::kHandlerSlot, 0}, {kTreeGetHdrSizeSlot, get_hdr}};
  return m;
}

ModuleImage surge(std::uint8_t tree_domain, bool fixed) {
  const runtime::Layout L{};  // modules are built against the default layout
  Assembler a;
  ModuleImage m;
  m.name = fixed ? "surge_fixed" : "surge";
  m.state_size = SurgeState::kSize;
  constexpr std::uint8_t kPktSize = 32;

  auto check_data = a.make_label();
  auto done = a.make_label();

  // === kInit ===
  a.cpi(r24, msg::kInit);
  a.brne(check_data);
  // buf = ker_malloc(kPktSize)
  a.ldi(r24, kPktSize);
  a.clr(r25);
  a.call_abs(kernel_entry(L, runtime::kernel_slots::kMalloc));
  // X = state as a loader-patched constant (state reloc): provable by the
  // elision analysis where the r21:r20 dispatch argument is not.
  m.state_relocs.push_back(a.here());
  a.ldi(r26, 0);
  a.ldi(r27, 0);
  a.st_x_inc(r24);  // state[0..1] = buf
  a.st_x_inc(r25);
  // fn = ker_subscribe(tree_domain, get_hdr_size). The unchecked use of
  // this subscription's call result below is the bug from the paper.
  a.ldi(r24, tree_domain);
  a.ldi(r22, static_cast<std::uint8_t>(kTreeGetHdrSizeSlot));
  a.call_abs(kernel_entry(L, sys_slots::kSubscribe));
  // Re-materialise X past the kernel call (a call havocs every register in
  // the analysis' model, and must: the callee is another domain).
  m.state_relocs.push_back(a.here());
  a.ldi(r26, SurgeState::kFnEntry);
  a.ldi(r27, 0);
  a.st_x_inc(r24);  // state[2..3] = jump-table entry of get_hdr_size
  a.st_x_inc(r25);
  a.rjmp(done);

  // === kData ===
  a.bind(check_data);
  a.cpi(r24, msg::kData);
  a.brne(done);
  // Sampling work: checksum over the sample window (keeps the macro
  // benchmark's protection-op density realistic).
  {
    auto csum = a.make_label();
    a.ldi(r18, 64);
    a.clr(r19);
    a.bind(csum);
    a.add(r19, r18);
    a.dec(r18);
    a.brne(csum);
  }
  a.movw(r16, r20);
  a.movw(r26, r16);
  a.adiw(r26, SurgeState::kFnEntry);
  a.ld_x_inc(r30);
  a.ld_x(r31);       // Z = subscribed entry
  a.icall();         // hdr = tree.get_hdr_size()  (0xFFFF when Tree is absent)
  if (fixed) {
    // The corrected module checks the cross-domain error code (§1.2:
    // "A common programming mistake in SOS is to forget to check the
    // error code returned by a cross-domain function call").
    auto hdr_ok = a.make_label();
    a.ldi(r18, 0xff);
    a.cpi(r24, 0xff);
    a.cpc(r25, r18);
    a.brne(hdr_ok);
    a.ldi(r24, 0xee);  // report the failure instead of using the value
    a.clr(r25);
    a.ret();
    a.bind(hdr_ok);
  }
  // Write the sample at buf[kPktSize - hdr]. With the Tree module loaded
  // hdr = 8 and this is buf[24]; with the 0xFFFF error result it is
  // buf[33] — one block past the sample buffer: the wild write the paper's
  // deployment suffered, which Harbor turns into a protection fault.
  a.ldi(r18, kPktSize);
  a.clr(r19);
  a.sub(r18, r24);
  a.sbc(r19, r25);
  a.movw(r26, r16);  // X = state
  a.ld_x_inc(r20);   // buf lo
  a.ld_x(r21);       // buf hi
  a.add(r20, r18);
  a.adc(r21, r19);
  a.movw(r26, r20);
  a.ldi(r20, 0x5a);  // the sensor sample
  a.st_x(r20);
  // Report the sample over the radio (Surge's job in the deployment).
  a.out(ports::kRadioData, r24);  // header size actually used
  a.out(ports::kRadioData, r20);  // the sample
  a.ldi(r20, 1);
  a.out(ports::kRadioCtl, r20);   // commit the frame
  a.bind(done);
  ret_ok(a);

  const Program p = a.assemble();
  m.code = p.words;
  m.exports = {{ModuleImage::kHandlerSlot, 0}};
  return m;
}

}  // namespace harbor::sos::modules
