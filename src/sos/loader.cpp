#include <stdexcept>

#include "avr/decoder.h"
#include "avr/encoder.h"
#include "sos/module.h"

namespace harbor::sos {

namespace {

/// Add `base` to the immediate of each ldi pair at `relocs`.
void patch_ldi_pair_relocs(std::vector<std::uint16_t>& words,
                           const std::vector<std::uint32_t>& relocs,
                           std::uint32_t base) {
  using avr::Instr;
  using avr::Mnemonic;
  const std::uint32_t n = static_cast<std::uint32_t>(words.size());
  for (const std::uint32_t off : relocs) {
    if (off + 1 >= n) throw std::runtime_error("relocate: reloc offset out of range");
    const Instr lo = avr::decode(words[off], 0);
    const Instr hi = avr::decode(words[off + 1], 0);
    if (lo.op != Mnemonic::Ldi || hi.op != Mnemonic::Ldi)
      throw std::runtime_error("relocate: reloc does not point at an ldi pair");
    const std::uint32_t target =
        (static_cast<std::uint32_t>(hi.imm) << 8 | lo.imm) + base;
    if (target > 0xffff) throw std::runtime_error("relocate: rebased pointer overflows");
    Instr nlo = lo;
    nlo.imm = static_cast<std::uint8_t>(target & 0xff);
    Instr nhi = hi;
    nhi.imm = static_cast<std::uint8_t>(target >> 8);
    words[off] = avr::encode(nlo).word[0];
    words[off + 1] = avr::encode(nhi).word[0];
  }
}

}  // namespace

std::vector<std::uint16_t> relocate_image(const ModuleImage& image, std::uint32_t base) {
  using avr::Instr;
  using avr::Mnemonic;
  std::vector<std::uint16_t> out = image.code;
  const std::uint32_t n = static_cast<std::uint32_t>(out.size());

  // Pass 1: rebase internal absolute call/jmp operands.
  for (std::uint32_t off = 0; off < n;) {
    const Instr i = avr::decode(out[off], off + 1 < n ? out[off + 1] : 0);
    if (i.op == Mnemonic::Invalid)
      throw std::runtime_error("relocate: undecodable opcode in '" + image.name + "'");
    if (i.words() == 2 && off + 1 >= n)
      throw std::runtime_error(
          "relocate: truncated image '" + image.name + "': two-word instruction at word " +
          std::to_string(off) + " has no second word");
    if ((i.op == Mnemonic::Call || i.op == Mnemonic::Jmp) && i.k32 < n) {
      Instr r = i;
      r.k32 = i.k32 + base;
      const avr::Encoding e = avr::encode(r);
      out[off] = e.word[0];
      out[off + 1] = e.word[1];
    }
    off += static_cast<std::uint32_t>(i.words());
  }

  // Pass 2: explicit ldi-pair code pointers.
  patch_ldi_pair_relocs(out, image.code_ptr_relocs, base);
  return out;
}

void patch_state_relocs(std::vector<std::uint16_t>& words,
                        const std::vector<std::uint32_t>& relocs,
                        std::uint16_t state_ptr) {
  patch_ldi_pair_relocs(words, relocs, state_ptr);
}

}  // namespace harbor::sos
