#pragma once
// SOS-style loadable module images.
//
// A module is position-independent raw AVR code (assembled at origin 0;
// the loader relocates it) plus metadata: exported functions (jump-table
// slots), additional address-taken entries, a message handler, and the
// size of its kernel-allocated state block.
//
// Handler convention (export slot 0):
//   handler(msg r24, arg r23:r22, state_ptr r21:r20) -> status r24

#include <cstdint>
#include <string>
#include <vector>

namespace harbor::sos {

/// One exported function: jump-table `slot` dispatches to word `offset`
/// inside the module.
struct Export {
  std::uint32_t slot = 0;
  std::uint32_t offset = 0;
};

struct ModuleImage {
  std::string name;
  std::vector<std::uint16_t> code;           ///< raw words, origin 0
  std::vector<Export> exports;               ///< slot 0 = message handler
  std::vector<std::uint32_t> extra_entries;  ///< address-taken function offsets
  std::uint16_t state_size = 0;              ///< kernel-allocated module state
  /// Word offsets of `ldi rXX, lo8(...)` / `ldi rXX+1, hi8(...)` pairs that
  /// load a module-internal code address (e.g. for icall): the loader
  /// rebases them. Direct internal call/jmp operands are rebased
  /// automatically; only immediate-loaded pointers need listing.
  std::vector<std::uint32_t> code_ptr_relocs;
  /// Word offsets of ldi pairs whose immediate is an offset *within the
  /// module's state block*: the loader adds the allocated state address.
  /// This is how a module materialises its state pointer as a constant the
  /// store-elision analysis can prove bounds for, instead of reading it
  /// from the dispatch registers (which any cross-domain caller controls).
  std::vector<std::uint32_t> state_relocs;

  /// Conventional jump-table slots.
  static constexpr std::uint32_t kHandlerSlot = 0;
};

/// Rebase a raw origin-0 module image to `base`: internal call/jmp operands
/// (absolute word addresses below the image size) get `base` added, as do
/// the ldi-pair code pointers listed in `code_ptr_relocs`. Relative flow
/// and external absolute targets (jump tables, stubs) are untouched.
/// Throws std::runtime_error on undecodable input or bad reloc offsets.
std::vector<std::uint16_t> relocate_image(const ModuleImage& image, std::uint32_t base);

/// Patch the ldi pairs at `relocs` in `words`, adding `state_ptr` to each
/// pair's immediate (the offset within the state block). Shared by both
/// load paths; throws std::runtime_error on bad offsets or overflow.
void patch_state_relocs(std::vector<std::uint16_t>& words,
                        const std::vector<std::uint32_t>& relocs,
                        std::uint16_t state_ptr);

/// Well-known message ids (mirrors SOS).
namespace msg {
inline constexpr std::uint8_t kInit = 0;
inline constexpr std::uint8_t kFinal = 1;
inline constexpr std::uint8_t kTimer = 2;
inline constexpr std::uint8_t kData = 3;
}  // namespace msg

}  // namespace harbor::sos
