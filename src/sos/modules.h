#pragma once
// Stock SOS-style modules used by tests, examples and the macro benchmark:
//
//   blink         counts timer messages into its state, mirrors the count
//                 to the debug-value port
//   tree_routing  exports get_hdr_size() (slot 1), the paper's Tree routing
//                 stand-in
//   surge         the paper's §1.2 anecdote: on a data message it calls the
//                 Tree routing module's get_hdr_size() through a subscribed
//                 function pointer and uses the result as a buffer offset
//                 WITHOUT checking for the 0xFFFF error value. When the
//                 Tree module is absent, the failed cross-domain call's
//                 result drives a wild store that Harbor catches.
//                 `fixed` = true builds the corrected module that checks
//                 the error code first.
//
// Modules are position-independent (relative internal control flow only)
// so the same image runs raw under UMPU and rewritten under SFI.

#include "sos/module.h"

namespace harbor::sos::modules {

/// Slot 1 of tree_routing: get_hdr_size() -> header size in r25:r24.
inline constexpr std::uint32_t kTreeGetHdrSizeSlot = 1;
inline constexpr std::uint8_t kTreeHdrSize = 8;

/// Surge state layout (within its kernel-allocated state block).
struct SurgeState {
  static constexpr std::uint16_t kBufPtr = 0;   ///< 2 bytes: sample buffer
  static constexpr std::uint16_t kFnEntry = 2;  ///< 2 bytes: subscribed entry
  static constexpr std::uint16_t kSize = 8;
};

ModuleImage blink();
ModuleImage tree_routing();
/// `tree_domain`: the protection domain Surge expects Tree routing in.
ModuleImage surge(std::uint8_t tree_domain, bool fixed);

}  // namespace harbor::sos::modules
