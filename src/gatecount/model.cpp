#include "gatecount/model.h"

namespace harbor::gatecount {

// The paper reports Xilinx ISE 8.2i "equivalent gate counts", which are
// derived from LUT utilization and systematically exceed NAND2-equivalent
// structural estimates for random logic. We therefore report raw structural
// GE per block and apply a single documented FPGA-mapping factor when
// comparing against Table 6 (see bench_table6_gatecount).
double fpga_mapping_factor() { return 1.6; }

UnitModel mmc_model(const HwConfig& cfg) {
  UnitModel u{"MMC", {}};
  const int A = cfg.addr_bits;
  // Paper Table 2 register file.
  u.blocks.push_back({"mem_map_base register", 1, A, ge::kDff});
  u.blocks.push_back({"mem_prot_bot register", 1, A, ge::kDff});
  u.blocks.push_back({"mem_prot_top register", 1, A, ge::kDff});
  if (cfg.runtime_configurable)
    u.blocks.push_back({"mem_map_config register", 1, 8, ge::kDff});
  u.blocks.push_back({"fault cause/address latch", 1, A + 4, ge::kDff});
  // Write-transaction capture while the core is stalled (Fig. 3a).
  u.blocks.push_back({"write addr/data latch", 1, A + 8, ge::kDff});
  u.blocks.push_back({"translated table-address latch", 1, A, ge::kDff});
  // Fig. 3b translation pipeline.
  u.blocks.push_back({"offset subtractor (addr - prot_bot)", 1, A, ge::kFullAdder});
  if (cfg.runtime_configurable) {
    // "a barrel shifter to support arbitrary bit-shifts in a single clock
    // cycle" — 3 mux stages for shifts of 1..7 plus the nibble/bit select.
    u.blocks.push_back({"barrel shifter (3 stages)", 3, A, ge::kMux2});
    u.blocks.push_back({"code slot select (variable)", 2, 8, ge::kMux2});
  } else {
    // Fixed block size: shifts become wiring; only the nibble select stays.
    u.blocks.push_back({"code slot select (fixed)", 1, 8, ge::kMux2});
  }
  u.blocks.push_back({"table index adder (base + offset)", 1, A, ge::kFullAdder});
  // Checks.
  u.blocks.push_back({"protected-range comparators", 2, A, ge::kCmpBit});
  u.blocks.push_back({"stack-bound comparator", 1, A, ge::kCmpBit});
  u.blocks.push_back({"owner/domain equality", 1, cfg.domain_bits + 2, ge::kEqBit});
  // Bus steal and control.
  u.blocks.push_back({"address-bus steal mux", 1, A, ge::kMux2});
  u.blocks.push_back({"data-bus mux / write-enable gating", 1, 12, ge::kMux2});
  u.blocks.push_back({"stall + grant/deny control", 1, 60, ge::kAndOr});
  return u;
}

UnitModel safe_stack_model(const HwConfig& cfg) {
  UnitModel u{"Safe Stack", {}};
  const int A = cfg.addr_bits;
  u.blocks.push_back({"safe_stack_ptr register", 1, A, ge::kDffEn});
  u.blocks.push_back({"safe_stack_base register", 1, A, ge::kDff});
  u.blocks.push_back({"safe_stack_bound register", 1, A, ge::kDff});
  u.blocks.push_back({"pointer inc/dec unit", 1, A, ge::kFullAdder});
  u.blocks.push_back({"overflow comparator", 1, A, ge::kCmpBit});
  u.blocks.push_back({"underflow comparator", 1, A, ge::kCmpBit});
  // Bus steal (paper: "simply takes over the address bus").
  u.blocks.push_back({"address-bus steal mux", 1, A, ge::kMux2});
  u.blocks.push_back({"data-bus mux", 1, 8, ge::kMux2});
  // Cross-domain frame engine: 5 bytes at one byte per cycle (Table 3).
  u.blocks.push_back({"frame sequencer state", 1, 3, ge::kDff});
  u.blocks.push_back({"frame sequencer next-state/output", 1, 56, ge::kAndOr});
  u.blocks.push_back({"frame byte select mux (ret/bound/marker)", 2, 8, ge::kMux2});
  u.blocks.push_back({"unwind value latches (ret addr + bound)", 1, 2 * A, ge::kDff});
  u.blocks.push_back({"marker detect / frame-kind decision", 1, 12, ge::kAndOr});
  return u;
}

UnitModel domain_tracker_model(const HwConfig& cfg) {
  UnitModel u{"Domain Tracker", {}};
  const int A = cfg.addr_bits;
  u.blocks.push_back({"current-domain register", 1, cfg.domain_bits, ge::kDffEn});
  u.blocks.push_back({"previous-domain latch", 1, cfg.domain_bits, ge::kDff});
  u.blocks.push_back({"jump_table_base register", 1, A, ge::kDff});
  if (cfg.runtime_configurable)
    u.blocks.push_back({"jump_table_config register", 1, 8, ge::kDff});
  // "checked by a simple compare operation to the base address" + the
  // deferred upper-bound check via the quotient (paper §3.2).
  u.blocks.push_back({"jump-table window subtract/compare", 1, A, ge::kCmpBit});
  u.blocks.push_back({"domain-id extract (power-of-2 divide)", 1, 8, ge::kAndOr});
  u.blocks.push_back({"domain-count bound check", 1, cfg.domain_bits, ge::kCmpBit});
  u.blocks.push_back({"call/ret steering control", 1, 20, ge::kAndOr});
  return u;
}

UnitModel fetch_decoder_delta_model(const HwConfig&) {
  UnitModel u{"Fetch Decoder (delta)", {}};
  // Extensions to the existing decoder: recognize call/ret classes for the
  // cross-domain state machine and route the stall request.
  u.blocks.push_back({"call/ret class decode", 1, 24, ge::kAndOr});
  u.blocks.push_back({"stall-request routing", 1, 14, ge::kAndOr});
  return u;
}

UnitModel integration_glue_model(const HwConfig& cfg) {
  UnitModel u{"Core integration glue", {}};
  const int A = cfg.addr_bits;
  // What the extended core needs around the dedicated units: arbitrating
  // three address-bus masters (core, MMC, safe stack), distributing the
  // stall, exposing the unit registers on the IO bus, and the exception
  // entry path.
  u.blocks.push_back({"3-way address-bus arbitration", 2, A, ge::kMux2});
  u.blocks.push_back({"data-bus arbitration", 2, 8, ge::kMux2});
  u.blocks.push_back({"IO-bus decode for unit registers", 1, 22 * 2, ge::kAndOr});
  u.blocks.push_back({"IO read-back mux", 1, 8 * 5, ge::kMux2});
  u.blocks.push_back({"stall distribution / clock gating", 1, 48, ge::kAndOr});
  u.blocks.push_back({"exception entry sequencing", 1, 64, ge::kAndOr});
  u.blocks.push_back({"trusted-domain write-protect on IO", 1, 24, ge::kAndOr});
  return u;
}

int modeled_core_extension(const HwConfig& cfg) {
  const double mapped =
      (mmc_model(cfg).total() + safe_stack_model(cfg).total() +
       domain_tracker_model(cfg).total() + fetch_decoder_delta_model(cfg).total() +
       integration_glue_model(cfg).total()) *
      fpga_mapping_factor();
  return PaperTable6::kCoreOrig + static_cast<int>(mapped + 0.5);
}

}  // namespace harbor::gatecount
