#pragma once
// Structural gate-count model of the UMPU hardware extensions (paper
// Table 6 substitution — we cannot run Xilinx ISE, see DESIGN.md §2).
//
// Each unit is described as a netlist of primitive blocks (flip-flops,
// adders, comparators, multiplexers, barrel-shifter stages, FSM state
// logic) with standard NAND2-gate-equivalent costs. The model reproduces
// the paper's structural claims: "Most of the additions to the core area
// are in the memory map decoder that maintains a barrel shifter to support
// arbitrary bit-shifts in a single clock cycle", and the conclusion's
// fixed-configuration ablation ("resource utilization ... can be further
// reduced by synthesizing hardware units that are pre-configured for a
// particular block size and number of protection domains").

#include <cstdint>
#include <string>
#include <vector>

namespace harbor::gatecount {

/// NAND2-equivalent costs of primitive blocks (typical standard-cell
/// figures used for gate-equivalent estimation).
namespace ge {
inline constexpr double kDff = 6.0;          ///< D flip-flop with reset
inline constexpr double kDffEn = 8.0;        ///< + clock enable
inline constexpr double kFullAdder = 6.5;    ///< sum + carry
inline constexpr double kMux2 = 3.0;         ///< 2:1, per bit
inline constexpr double kCmpBit = 3.5;       ///< magnitude comparator slice
inline constexpr double kEqBit = 2.0;        ///< equality slice (xnor + and)
inline constexpr double kAndOr = 1.5;        ///< misc random logic, per term
}  // namespace ge

/// One row of a unit's netlist: `count` instances of a `width`-bit block.
struct Block {
  std::string name;
  int count = 1;
  int width = 1;
  double unit_ge = 1.0;

  [[nodiscard]] double total() const { return count * width * unit_ge; }
};

struct UnitModel {
  std::string name;
  std::vector<Block> blocks;

  [[nodiscard]] double total() const {
    double t = 0;
    for (const Block& b : blocks) t += b.total();
    return t;
  }
  [[nodiscard]] int total_rounded() const { return static_cast<int>(total() + 0.5); }
};

/// Configuration knobs mirrored from mem_map_config.
struct HwConfig {
  bool runtime_configurable = true;  ///< barrel shifter + config registers
  int addr_bits = 16;
  int domain_bits = 3;
  int jt_domains = 8;
};

/// Xilinx ISE "equivalent gates" exceed NAND2 structural estimates for
/// random logic; this documented factor converts between the two scales.
double fpga_mapping_factor();

UnitModel mmc_model(const HwConfig& cfg = {});
UnitModel safe_stack_model(const HwConfig& cfg = {});
UnitModel domain_tracker_model(const HwConfig& cfg = {});
UnitModel fetch_decoder_delta_model(const HwConfig& cfg = {});
/// Bus arbitration / stall distribution glue that the extended core needs
/// beyond the dedicated units.
UnitModel integration_glue_model(const HwConfig& cfg = {});

/// Paper Table 6 reference values.
struct PaperTable6 {
  static constexpr int kCoreOrig = 16419;
  static constexpr int kCoreExt = 22498;
  static constexpr int kFetchOrig = 6685;
  static constexpr int kFetchExt = 6783;
  static constexpr int kMmc = 2284;
  static constexpr int kSafeStack = 1749;
  static constexpr int kDomainTracker = 541;
};

/// Modeled extended-core total: the paper's original core plus our modeled
/// additions.
int modeled_core_extension(const HwConfig& cfg = {});

}  // namespace harbor::gatecount
