#include "inject/report.h"

#include <cstdio>

#include "trace/json.h"

namespace harbor::inject {

namespace json = trace::json;

namespace {

const char* mode_name(runtime::Mode m) {
  switch (m) {
    case runtime::Mode::Umpu: return "umpu";
    case runtime::Mode::Sfi: return "sfi";
    default: return "none";
  }
}

std::string hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%04x", v);
  return buf;
}

}  // namespace

std::string report_text(const CampaignReport& r) {
  // Built with += pieces (not operator+ chains): GCC 12's -Wrestrict trips
  // on false positives in literal+to_string chains under -O2.
  std::string out = "fault-injection campaign: mode=";
  out += mode_name(r.config.mode);
  out += " seed=";
  out += std::to_string(r.config.seed);
  out += " mutants=";
  out += std::to_string(r.mutants.size());
  if (r.config.weakened) out += " [WEAKENED CHECKER]";
  out += "\noracle: ";
  out += std::to_string(r.protected_bytes);
  out += " protected bytes; golden value=";
  out += std::to_string(r.golden_value);
  out += ", ";
  out += std::to_string(r.golden_instructions);
  out += " instructions\n";
  for (int i = 0; i < kOutcomeCount; ++i) {
    const auto o = static_cast<Outcome>(i);
    char line[64];
    std::snprintf(line, sizeof line, "  %-10s %6d\n",
                  std::string(outcome_name(o)).c_str(), r.counts[i]);
    out += line;
  }
  if (r.coverage) {
    const prof::CoverageSummary& c = *r.coverage;
    out += "coverage: blocks ";
    out += std::to_string(c.blocks_covered);
    out += "/";
    out += std::to_string(c.blocks_total);
    out += ", guard sites ";
    out += std::to_string(c.guards_covered());
    out += "/";
    out += std::to_string(c.guards_total());
    for (const prof::GuardSite& g : c.uncovered_guards()) {
      out += "\n  NEVER EXERCISED: ";
      out += prof::guard_kind_name(g.kind);
      out += " @+";
      out += std::to_string(g.off);
    }
    out += "\n";
  }
  for (const MutantRecord& m : r.mutants) {
    if (m.outcome != Outcome::Escape) continue;
    out += "ESCAPE mutant #";
    out += std::to_string(m.index);
    out += ": ";
    out += m.detail;
    out += "  divergent:";
    for (const std::uint16_t a : m.divergent) {
      out += ' ';
      out += hex(a);
    }
    out += "\n";
  }
  return out;
}

std::string report_json(const CampaignReport& r) {
  using json::escape;
  std::string out = "{";
  out += "\"schema\":\"harbor-inject-report-v1\"";
  out += ",\"mode\":\"" + std::string(mode_name(r.config.mode)) + '"';
  out += ",\"seed\":" + std::to_string(r.config.seed);
  out += ",\"count\":" + std::to_string(r.mutants.size());
  out += ",\"cycle_budget\":" + std::to_string(r.config.cycle_budget);
  out += std::string(",\"weakened\":") + (r.config.weakened ? "true" : "false");
  out += ",\"protected_bytes\":" + std::to_string(r.protected_bytes);
  out += ",\"golden_value\":" + std::to_string(r.golden_value);
  out += ",\"golden_instructions\":" + std::to_string(r.golden_instructions);
  out += ",\"outcomes\":{";
  {
    json::Joiner j(out);
    for (int i = 0; i < kOutcomeCount; ++i) {
      j.item();
      out += '"' + std::string(outcome_name(static_cast<Outcome>(i))) +
             "\":" + std::to_string(r.counts[i]);
    }
  }
  out += "},\"mutants\":[";
  {
    json::Joiner j(out);
    for (const MutantRecord& m : r.mutants) {
      j.item();
      out += "{\"index\":" + std::to_string(m.index);
      out += ",\"kind\":\"" + std::string(mutation_kind_name(m.mutation.kind)) + '"';
      out += ",\"mutation\":\"" + escape(describe(m.mutation)) + '"';
      out += ",\"outcome\":\"" + std::string(outcome_name(m.outcome)) + '"';
      if (m.fault != avr::FaultKind::None)
        out += ",\"fault\":\"" + std::string(avr::fault_kind_name(m.fault)) + '"';
      if (!m.divergent.empty()) {
        out += ",\"divergent\":[";
        json::Joiner d(out);
        for (const std::uint16_t a : m.divergent) {
          d.item();
          out += std::to_string(a);
        }
        out += ']';
      }
      if (m.outcome == Outcome::Escape || m.outcome == Outcome::Rejected)
        out += ",\"detail\":\"" + escape(m.detail) + '"';
      out += '}';
    }
  }
  out += "]";
  if (r.coverage) out += ",\"coverage\":" + r.coverage->to_json();
  out += "}";
  return out;
}

}  // namespace harbor::inject
