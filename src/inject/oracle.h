#pragma once
// Golden-run memory oracle: the ground truth a mutant's final memory is
// judged against.
//
// The protected set is every byte that NO legitimate action of the subject
// module may alter — not even a confused-but-authorized one. A corrupted
// module can still call kernel services through the jump table (malloc,
// free, ...), and those run as the trusted domain and legitimately rewrite
// the memory-map table, heap headers and free blocks; such changes are the
// kernel acting on an authorized request, not a containment failure. What
// the subject can never legitimately change is a *bystander's* memory:
//
//   - every byte of a block whose golden owner is an untrusted domain
//     other than the subject (the victim's data), and
//   - every memory-map table byte all of whose covered blocks are owned by
//     such bystander domains (the permission codes that guard them; a
//     mutant that grants itself a victim block flips exactly these).
//
// Any divergence between a mutant's final protected bytes and the golden
// snapshot means the protection let a cross-domain write through — an
// Escape, regardless of whether the run also faulted.

#include <cstdint>
#include <functional>
#include <vector>

#include "memmap/config.h"
#include "runtime/testbed.h"

namespace harbor::inject {

class Oracle {
 public:
  /// Snapshot the protected set from `tb` after the golden run.
  static Oracle capture(runtime::Testbed& tb, memmap::DomainId subject);

  /// Inverse selection for the soak harness's no-escape monitor: protect
  /// every byte the golden map assigns to `victim` itself, plus the map
  /// bytes that encode only victim-owned blocks. Captured once after the
  /// victim is initialized and never dispatched again, any later divergence
  /// means some *other* domain's traffic escaped into it.
  static Oracle capture_owned(runtime::Testbed& tb, memmap::DomainId victim);

  /// Addresses whose current value in `tb` differs from the golden
  /// snapshot (empty = no escape).
  [[nodiscard]] std::vector<std::uint16_t> diff(runtime::Testbed& tb) const;

  [[nodiscard]] std::size_t protected_bytes() const { return addrs_.size(); }

 private:
  /// Shared capture machinery: protect every data byte whose golden block
  /// satisfies `pred`, plus map-table bytes all of whose blocks do.
  static Oracle capture_where(runtime::Testbed& tb,
                              const std::function<bool(memmap::DomainId owner)>& pred);

  std::vector<std::uint16_t> addrs_;
  std::vector<std::uint8_t> golden_;
};

}  // namespace harbor::inject
