#pragma once
// Campaign report rendering: a human-readable summary and a machine-
// readable JSON document (schema: tools/trace_schema.json,
// "inject_report"). CI runs the smoke campaign, archives the JSON and
// fails the build on any escape.

#include <string>

#include "inject/campaign.h"

namespace harbor::inject {

/// Multi-line text summary (outcome table + escape details).
std::string report_text(const CampaignReport& report);

/// Full JSON document, including one record per mutant.
std::string report_json(const CampaignReport& report);

}  // namespace harbor::inject
