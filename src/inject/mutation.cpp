#include "inject/mutation.h"

#include <cstdio>
#include <string>

#include "asm/builder.h"
#include "avr/decoder.h"
#include "core/prng.h"

namespace harbor::inject {

namespace {

/// Word of a single-instruction program (for the OpcodeSub table).
template <typename Emit>
std::uint16_t word_of(Emit emit) {
  assembler::Assembler a;
  emit(a);
  return a.assemble().words.at(0);
}

/// Dangerous single-word opcodes a mutant may be rewritten to. Each is an
/// instruction the SFI verifier must reject raw and the UMPU hardware must
/// contain at run time.
std::vector<std::uint16_t> dangerous_opcodes() {
  using assembler::Assembler;
  using namespace assembler;
  return {
      word_of([](Assembler& a) { a.st_x_inc(r19); }),
      word_of([](Assembler& a) { a.st_y_inc(r22); }),
      word_of([](Assembler& a) { a.st_z_inc(r24); }),
      word_of([](Assembler& a) { a.st_x(r0); }),
      word_of([](Assembler& a) { a.ret(); }),
      word_of([](Assembler& a) { a.reti(); }),
      word_of([](Assembler& a) { a.icall(); }),
      word_of([](Assembler& a) { a.ijmp(); }),
      word_of([](Assembler& a) { a.spm(); }),
      word_of([](Assembler& a) { a.out(0x3d, r24); }),  // SPL
  };
}

/// Instruction-boundary scan of the image: boundaries, plus the operand
/// words / immediate loads that feed jump-table dispatch.
struct Sites {
  std::vector<std::uint32_t> boundaries;  ///< word index of every instruction
  std::vector<std::uint32_t> jt_sites;    ///< words whose corruption redirects
                                          ///< a jump-table transfer
};

Sites scan(const PlanContext& ctx) {
  Sites s;
  const auto& w = ctx.words;
  for (std::uint32_t i = 0; i < w.size();) {
    const std::uint16_t w1 = i + 1 < w.size() ? w[i + 1] : 0;
    const avr::Instr in = avr::decode(w[i], w1);
    s.boundaries.push_back(i);
    const int n = in.op == avr::Mnemonic::Invalid ? 1 : in.words();
    if ((in.op == avr::Mnemonic::Call || in.op == avr::Mnemonic::Jmp) &&
        in.k32 >= ctx.jt_lo && in.k32 < ctx.jt_hi && i + 1 < w.size()) {
      s.jt_sites.push_back(i + 1);  // the absolute-address operand word
    }
    // SFI cross-call sequences load the jump-table entry into Z with
    // ldi r30/r31 immediates; corrupting those redirects the dispatch.
    if (in.op == avr::Mnemonic::Ldi && (in.d == 30 || in.d == 31)) s.jt_sites.push_back(i);
    i += static_cast<std::uint32_t>(n);
  }
  return s;
}

}  // namespace

std::vector<Mutation> plan_campaign(const PlanContext& ctx, std::uint64_t seed, int count) {
  // Campaign generator: the shared splitmix64 stream (core/prng.h) —
  // 8 bytes of state, bit-identical across hosts and standard libraries.
  core::Prng rng(seed);
  const Sites sites = scan(ctx);
  const std::vector<std::uint16_t> opcodes = dangerous_opcodes();

  auto pick = [&rng](std::uint64_t n) { return rng.below(n); };

  std::vector<Mutation> plan;
  plan.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Mutation m;
    // Class mix: mostly random flips, with a steady diet of adversarial
    // substitutions, dispatch corruption and live-state corruption.
    const std::uint64_t roll = pick(100);
    if (roll < 40) {
      m.kind = MutationKind::BitFlip;
    } else if (roll < 65) {
      m.kind = MutationKind::OpcodeSub;
    } else if (roll < 80) {
      m.kind = MutationKind::JumpTableIndex;
    } else {
      m.kind = MutationKind::SramBitFlip;
    }
    // Degrade gracefully if a class has no sites in this image.
    if (m.kind == MutationKind::JumpTableIndex && sites.jt_sites.empty())
      m.kind = MutationKind::BitFlip;
    if (m.kind == MutationKind::SramBitFlip &&
        ctx.buf_hi <= ctx.buf_lo && ctx.stack_hi <= ctx.stack_lo)
      m.kind = MutationKind::BitFlip;

    switch (m.kind) {
      case MutationKind::BitFlip:
        m.word_index = static_cast<std::uint32_t>(pick(ctx.words.size()));
        m.bit = static_cast<std::uint8_t>(pick(16));
        break;
      case MutationKind::OpcodeSub:
        m.word_index = sites.boundaries[pick(sites.boundaries.size())];
        m.new_word = opcodes[pick(opcodes.size())];
        break;
      case MutationKind::JumpTableIndex:
        m.word_index = sites.jt_sites[pick(sites.jt_sites.size())];
        m.bit = static_cast<std::uint8_t>(pick(8));  // low byte: entry select
        break;
      case MutationKind::SramBitFlip: {
        const std::uint32_t buf = ctx.buf_hi > ctx.buf_lo ? ctx.buf_hi - ctx.buf_lo : 0;
        const std::uint32_t stk =
            ctx.stack_hi > ctx.stack_lo ? ctx.stack_hi - ctx.stack_lo : 0;
        const std::uint64_t off = pick(buf + stk);
        m.sram_addr = off < buf ? static_cast<std::uint16_t>(ctx.buf_lo + off)
                                : static_cast<std::uint16_t>(ctx.stack_lo + (off - buf));
        m.bit = static_cast<std::uint8_t>(pick(8));
        m.trigger_instr = 1 + pick(ctx.instr_count ? ctx.instr_count : 1);
        break;
      }
    }
    plan.push_back(m);
  }
  return plan;
}

void apply_mutation(std::vector<std::uint16_t>& words, const Mutation& m) {
  switch (m.kind) {
    case MutationKind::BitFlip:
    case MutationKind::JumpTableIndex:
      words.at(m.word_index) ^= static_cast<std::uint16_t>(1u << m.bit);
      break;
    case MutationKind::OpcodeSub:
      words.at(m.word_index) = m.new_word;
      break;
    case MutationKind::SramBitFlip:
      break;  // applied live by the campaign's fetch hook
  }
}

std::string describe(const Mutation& m) {
  std::string out(mutation_kind_name(m.kind));
  switch (m.kind) {
    case MutationKind::BitFlip:
    case MutationKind::JumpTableIndex:
      out += " word " + std::to_string(m.word_index) + " bit " + std::to_string(m.bit);
      break;
    case MutationKind::OpcodeSub: {
      char buf[16];
      std::snprintf(buf, sizeof buf, "0x%04x", m.new_word);
      out += " word " + std::to_string(m.word_index) + " -> " + buf;
      break;
    }
    case MutationKind::SramBitFlip: {
      char buf[16];
      std::snprintf(buf, sizeof buf, "0x%04x", m.sram_addr);
      out += " addr " + std::string(buf) + " bit " + std::to_string(m.bit) + " @instr " +
             std::to_string(m.trigger_instr);
      break;
    }
  }
  return out;
}

}  // namespace harbor::inject
