#pragma once
// Fault-injection campaign engine.
//
// Fixed scenario (identical for golden run and every mutant): a victim
// buffer owned by domain 1, a subject module in domain 2 that fills its own
// kernel-allocated buffer, checksums the victim buffer (reads are
// unrestricted), and makes one cross-domain call into the kernel jump
// table. The subject image is mutated per a seeded plan and every mutant is
// run in a fresh, hermetic Testbed under the selected protection mode, then
// classified against the golden-run memory oracle (oracle.h) into the
// Outcome taxonomy (classify.h).
//
// The `weakened` switch is a test-only hook that disables the checker —
// the UMPU memory-map checker enable bit, or the SFI load-time verifier —
// to demonstrate that the oracle really detects escapes when protection is
// absent. A healthy campaign (weakened = false) must report zero escapes.
//
// The OTA power-cut campaign (src/ota/campaign.h) applies this same
// recipe — seeded deterministic plan, golden-run oracle, typed outcome
// taxonomy, weakened self-test — to flash-write interruption instead of
// image mutation.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "avr/hooks.h"
#include "inject/classify.h"
#include "inject/mutation.h"
#include "prof/coverage.h"
#include "runtime/runtime.h"

namespace harbor::inject {

struct CampaignConfig {
  runtime::Mode mode = runtime::Mode::Umpu;  ///< Umpu or Sfi
  std::uint64_t seed = 1;
  int count = 100;
  std::uint64_t cycle_budget = 100'000;  ///< watchdog per guest call
  bool weakened = false;                 ///< disable the checker (oracle self-test)
  std::size_t flight_depth = 16;         ///< flight-recorder depth for escape dumps
  /// Accumulate a coverage map of the clean subject image across all mutant
  /// runs (which blocks/guard sites/fault paths the campaign exercised).
  bool coverage = false;
  /// SFI only: rewrite the subject under a store-elision policy (its own
  /// buffer is the safe region) and verify every mutant against the proof
  /// manifest, so the campaign also attacks the V9 re-proof path.
  bool elide = true;
};

struct MutantRecord {
  int index = 0;
  Mutation mutation;
  Outcome outcome = Outcome::Benign;
  avr::FaultKind fault = avr::FaultKind::None;
  std::uint16_t value = 0;                ///< guest return value (r25:r24)
  std::vector<std::uint16_t> divergent;   ///< first divergent addresses (escapes)
  std::string detail;                     ///< verifier reason / flight dump
};

struct CampaignReport {
  CampaignConfig config;
  std::size_t protected_bytes = 0;        ///< oracle coverage
  std::uint16_t golden_value = 0;         ///< golden-run return value
  std::uint64_t golden_instructions = 0;
  std::array<int, kOutcomeCount> counts{};
  std::vector<MutantRecord> mutants;
  /// Present when config.coverage: the campaign-wide coverage map of the
  /// clean subject image (blocks, guard sites, fault-handler paths).
  std::optional<prof::CoverageSummary> coverage;

  [[nodiscard]] int escapes() const {
    return counts[static_cast<int>(Outcome::Escape)];
  }
  [[nodiscard]] int count_of(Outcome o) const { return counts[static_cast<int>(o)]; }
};

/// Run a seeded campaign: plan `config.count` mutants and classify each.
CampaignReport run_campaign(const CampaignConfig& config);

/// Run an explicit plan (for targeted tests and resumable tooling).
CampaignReport run_campaign(const CampaignConfig& config,
                            const std::vector<Mutation>& plan);

/// The deterministic escape demonstrator: an OpcodeSub that turns the
/// subject's victim-buffer *load* into a *store*. With the checker active
/// it is Contained (UMPU) / Rejected (SFI); weakened, it escapes.
Mutation store_escape_mutation(const CampaignConfig& config);

}  // namespace harbor::inject
