#pragma once
// Seeded mutation planning for the fault-injection campaign.
//
// A plan is a deterministic function of (image, seed, count): the same seed
// always yields the same mutants, so campaign results are reproducible
// across runs and machines. Mutation classes model the corruptions the
// paper's protection must contain:
//
//   BitFlip         single-bit flip anywhere in the loaded image (cosmic-ray
//                   / flash-wear model)
//   OpcodeSub       an instruction replaced by a dangerous one (st/ret/
//                   icall/ijmp/spm) — the adversarial "what if the rewriter
//                   missed one" model
//   JumpTableIndex  corrupt the operand that selects a jump-table entry
//                   (call operand words, cross-call Z loads)
//   SramBitFlip     a live bit flip in the module's own RAM (buffer or
//                   run-time stack) mid-execution — corrupted module state,
//                   not a corrupted TCB
//
// Code mutations apply to the image *as loaded*: the raw binary under UMPU,
// the rewritten binary under SFI (so SFI mutants exercise the verifier).

#include <cstdint>
#include <string_view>
#include <vector>

namespace harbor::inject {

enum class MutationKind : std::uint8_t {
  BitFlip,
  OpcodeSub,
  JumpTableIndex,
  SramBitFlip,
};

inline constexpr int kMutationKindCount = static_cast<int>(MutationKind::SramBitFlip) + 1;

constexpr std::string_view mutation_kind_name(MutationKind k) {
  switch (k) {
    case MutationKind::BitFlip: return "bit-flip";
    case MutationKind::OpcodeSub: return "opcode-sub";
    case MutationKind::JumpTableIndex: return "jt-index";
    case MutationKind::SramBitFlip: return "sram-flip";
  }
  return "?";
}

struct Mutation {
  MutationKind kind = MutationKind::BitFlip;
  std::uint32_t word_index = 0;    ///< image word touched (code mutations)
  std::uint8_t bit = 0;            ///< bit flipped (BitFlip/JumpTableIndex/SramBitFlip)
  std::uint16_t new_word = 0;      ///< replacement opcode (OpcodeSub)
  std::uint16_t sram_addr = 0;     ///< data address (SramBitFlip)
  std::uint64_t trigger_instr = 0; ///< retired-instruction count that arms the flip
};

/// Everything the planner needs to pick mutation sites.
struct PlanContext {
  std::vector<std::uint16_t> words;  ///< image as loaded (mode-specific)
  std::uint32_t origin = 0;          ///< load origin (word address)
  std::uint32_t jt_lo = 0;           ///< jump-table window [jt_lo, jt_hi)
  std::uint32_t jt_hi = 0;
  std::uint16_t buf_lo = 0;          ///< subject-owned buffer window
  std::uint16_t buf_hi = 0;
  std::uint16_t stack_lo = 0;        ///< run-time stack window the subject uses
  std::uint16_t stack_hi = 0;
  std::uint64_t instr_count = 0;     ///< golden-run retired instructions
};

/// Plan exactly `count` mutations, deterministically from `seed`.
std::vector<Mutation> plan_campaign(const PlanContext& ctx, std::uint64_t seed, int count);

/// Apply a code mutation (BitFlip/OpcodeSub/JumpTableIndex) to image words.
/// SramBitFlip mutations are applied at run time and leave `words` alone.
void apply_mutation(std::vector<std::uint16_t>& words, const Mutation& m);

/// One-line human description ("bit-flip word 12 bit 3", ...).
std::string describe(const Mutation& m);

}  // namespace harbor::inject
