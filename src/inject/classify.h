#pragma once
// Outcome taxonomy of the fault-injection campaign (see DESIGN.md §10).
//
// Every mutant is classified against a golden-run memory oracle; the enum
// is total, so a campaign can never produce an unclassified mutant.

#include <cstdint>
#include <string_view>

namespace harbor::inject {

enum class Outcome : std::uint8_t {
  /// The mutant ran to completion without a fault and without touching any
  /// protected byte (the corruption was masked or inconsequential).
  Benign,
  /// The protection machinery stopped the mutant: it faulted (MMC deny,
  /// stack bound, fetch deny, checker fault, ...) and no protected byte
  /// diverged from the golden run.
  Contained,
  /// SFI only: the verifier refused to admit the mutated binary, so it
  /// never executed (the paper's load-time line of defence).
  Rejected,
  /// The mutant neither halted nor faulted within the cycle budget and was
  /// killed by the watchdog; no protected byte diverged.
  Hung,
  /// A protected byte differs from the golden run: the mutant wrote memory
  /// it does not own. This is a protection failure and fails the campaign.
  Escape,
};

inline constexpr int kOutcomeCount = static_cast<int>(Outcome::Escape) + 1;

constexpr std::string_view outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Benign: return "benign";
    case Outcome::Contained: return "contained";
    case Outcome::Rejected: return "rejected";
    case Outcome::Hung: return "hung";
    case Outcome::Escape: return "escape";
  }
  return "?";
}

}  // namespace harbor::inject
