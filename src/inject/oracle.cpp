#include "inject/oracle.h"

#include "memmap/memory_map.h"

namespace harbor::inject {

Oracle Oracle::capture(runtime::Testbed& tb, memmap::DomainId subject) {
  // A block is a bystander's iff an untrusted domain other than the
  // subject owns it in the golden map.
  return capture_where(tb, [subject](memmap::DomainId owner) {
    return owner != subject && owner != memmap::kTrustedDomain;
  });
}

Oracle Oracle::capture_owned(runtime::Testbed& tb, memmap::DomainId victim) {
  return capture_where(tb, [victim](memmap::DomainId owner) { return owner == victim; });
}

Oracle Oracle::capture_where(runtime::Testbed& tb,
                             const std::function<bool(memmap::DomainId)>& pred) {
  const runtime::Layout& L = tb.layout();
  const memmap::Config cfg = L.memmap_config();
  memmap::MemoryMap view(cfg);
  view.load_table(tb.guest_map_table());

  const auto bystander = [&](std::uint32_t block) {
    if (block >= view.block_count()) return false;
    return pred(view.block(block).owner);
  };

  Oracle o;
  auto& data = tb.device().data();
  const std::uint16_t map_end =
      static_cast<std::uint16_t>(L.map_base + cfg.table_bytes());
  for (std::uint32_t a = L.prot_bot; a < L.prot_top; ++a) {
    const auto addr = static_cast<std::uint16_t>(a);
    bool protect;
    if (addr >= L.map_base && addr < map_end) {
      // A table byte is protected when every block it encodes belongs to a
      // bystander (legitimate allocator calls may rewrite the others).
      protect = true;
      const std::uint32_t first = (addr - L.map_base) *
                                  static_cast<std::uint32_t>(cfg.blocks_per_byte());
      for (int k = 0; k < cfg.blocks_per_byte(); ++k)
        if (!bystander(first + static_cast<std::uint32_t>(k))) protect = false;
    } else {
      protect = bystander(view.translate(addr).block_index);
    }
    if (!protect) continue;
    o.addrs_.push_back(addr);
    o.golden_.push_back(data.sram_raw(addr));
  }
  return o;
}

std::vector<std::uint16_t> Oracle::diff(runtime::Testbed& tb) const {
  std::vector<std::uint16_t> out;
  const auto& data = tb.device().data();
  for (std::size_t i = 0; i < addrs_.size(); ++i)
    if (data.sram_raw(addrs_[i]) != golden_[i]) out.push_back(addrs_[i]);
  return out;
}

}  // namespace harbor::inject
