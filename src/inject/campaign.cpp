#include "inject/campaign.h"

#include <memory>
#include <stdexcept>

#include "asm/builder.h"
#include "inject/oracle.h"
#include "prof/profiler.h"
#include "runtime/testbed.h"
#include "sfi/rewriter.h"
#include "sfi/verifier.h"
#include "trace/export.h"
#include "trace/tracer.h"

namespace harbor::inject {

using assembler::Program;
using runtime::CallResult;
using runtime::Testbed;

namespace {

constexpr std::uint16_t kBufBytes = 24;
constexpr memmap::DomainId kVictimDomain = 1;
constexpr memmap::DomainId kSubjectDomain = 2;
constexpr std::uint16_t kStackWindow = 64;  ///< run-time stack bytes mutated

/// Subject module, raw at origin 0. Entry (r25:r24 = own buffer): fill the
/// buffer with a ramp, stamp the ramp's end value into buffer byte 0 via a
/// statically-addressed sts (the elidable store), checksum the victim
/// buffer (reads are unrestricted), one cross-domain call to the kernel nop
/// export, return the checksum.
Program subject_program(std::uint16_t victim_addr, std::uint16_t buf_addr,
                        std::uint32_t jt_nop) {
  using namespace assembler;
  Assembler a(0);
  a.movw(r26, r24);  // X = own buffer
  a.ldi(r18, kBufBytes);
  a.ldi(r19, 0xA5);
  const Label fill = a.bind_here("fill");
  a.st_x_inc(r19);
  a.inc(r19);
  a.dec(r18);
  a.brne(fill);
  a.sts(buf_addr, r19);  // provably in-buffer: elidable under the policy
  a.ldi16(r28, victim_addr);  // Y = victim buffer (read-only view)
  a.ldi(r20, 8);
  a.clr(r21);
  const Label sum = a.bind_here("sum");
  a.mark("victim_ld");
  a.ld_y_inc(r22);
  a.add(r21, r22);
  a.dec(r20);
  a.brne(sum);
  a.call_abs(jt_nop);  // cross-domain call through the kernel jump table
  a.mov(r24, r21);
  a.clr(r25);
  a.ret();
  return a.assemble();
}

/// Host-side scenario setup, identical before the golden run and before
/// every mutant: allocate the victim and subject buffers (deterministic
/// addresses) and stamp the victim with a recognizable pattern.
struct Addrs {
  std::uint16_t victim = 0;
  std::uint16_t buf = 0;
};

Addrs setup(Testbed& tb) {
  const CallResult v = tb.malloc(kBufBytes, memmap::kTrustedDomain, kVictimDomain);
  const CallResult b = tb.malloc(kBufBytes, memmap::kTrustedDomain, kSubjectDomain);
  if (v.faulted || b.faulted || v.value == 0 || b.value == 0)
    throw std::runtime_error("inject: scenario allocation failed");
  auto& data = tb.device().data();
  for (std::uint16_t i = 0; i < kBufBytes; ++i)
    data.set_sram_raw(static_cast<std::uint16_t>(v.value + i),
                      static_cast<std::uint8_t>(0x5A + i));
  return {v.value, b.value};
}

/// Everything shared across the mutant loop, derived once per campaign.
struct Prepared {
  Program clean;                           ///< image as loaded (mode-specific)
  std::uint32_t entry = 0;                 ///< absolute entry word address
  std::vector<std::uint32_t> entries_abs;  ///< declared entries (SFI verify)
  sfi::StubTable stubs{};                  ///< SFI checker stubs
  sfi::ElisionPolicy policy{};             ///< SFI store-elision policy
  sfi::ProofManifest manifest{};           ///< elision claims of the clean image
  Addrs addrs;
  Oracle oracle;
  std::uint64_t golden_instrs = 0;
  std::uint16_t golden_value = 0;
  std::uint32_t victim_ld_index = 0;       ///< word index of the victim load
};

Prepared prepare(const CampaignConfig& cfg) {
  if (cfg.mode != runtime::Mode::Umpu && cfg.mode != runtime::Mode::Sfi)
    throw std::invalid_argument("inject: campaign mode must be Umpu or Sfi");

  Prepared P;

  // Probe run: learn the (deterministic) scenario addresses and build the
  // mode-specific image.
  Testbed probe(cfg.mode);
  P.addrs = setup(probe);
  const runtime::Layout& L = probe.layout();
  const Program raw =
      subject_program(P.addrs.victim, P.addrs.buf,
                      L.jt_entry(memmap::kTrustedDomain, Testbed::kNopSlot));
  const std::uint32_t ld_off = raw.symbol("victim_ld").value();

  if (cfg.mode == runtime::Mode::Sfi) {
    P.stubs = sfi::StubTable::from_runtime(probe.runtime());
    if (cfg.elide) {
      P.policy.enable = true;
      P.policy.safe_regions.push_back(
          {P.addrs.buf, static_cast<std::uint16_t>(P.addrs.buf + kBufBytes - 1)});
      P.policy.forbidden_entries = {
          L.jt_entry(memmap::kTrustedDomain, runtime::kernel_slots::kFree),
          L.jt_entry(memmap::kTrustedDomain, runtime::kernel_slots::kChangeOwn)};
      P.policy.computed_calls_screened = true;  // icall_check screens these
    }
    sfi::RewriteInput in;
    in.words = raw.words;
    in.entries = {0};
    const sfi::RewriteResult res =
        sfi::rewrite(in, P.stubs, probe.module_area(), P.policy);
    P.manifest = res.manifest;
    P.clean = res.program;
    P.entry = res.map_offset(0);
    P.entries_abs = {P.entry};
    P.victim_ld_index = res.map_offset(ld_off) - res.program.origin;
  } else {
    P.clean.origin = probe.module_area();
    P.clean.words = raw.words;
    P.entry = P.clean.origin;
    P.entries_abs = {P.entry};
    P.victim_ld_index = ld_off;
  }

  // Golden run in a fresh testbed: the oracle snapshot and the reference
  // instruction count come from here.
  Testbed golden(cfg.mode);
  golden.set_cycle_budget(cfg.cycle_budget);
  const Addrs ga = setup(golden);
  if (ga.victim != P.addrs.victim || ga.buf != P.addrs.buf)
    throw std::runtime_error("inject: scenario addresses are not deterministic");
  golden.load_module_image(P.clean, kSubjectDomain);
  const std::uint64_t i0 = golden.device().cpu().instruction_count();
  const CallResult r = golden.call_module(P.entry, kSubjectDomain, P.addrs.buf);
  if (r.faulted)
    throw std::runtime_error("inject: golden run faulted (" +
                             std::string(avr::fault_kind_name(r.fault)) + ")");
  P.golden_instrs = golden.device().cpu().instruction_count() - i0;
  P.golden_value = r.value;
  P.oracle = Oracle::capture(golden, kSubjectDomain);
  return P;
}

/// CpuHooks decorator that flips one SRAM bit after N retired instructions
/// (the live-state corruption model), forwarding everything to the inner
/// sink so protection and tracing behave exactly as without it.
class SramFlipHook final : public avr::CpuHooks {
 public:
  SramFlipHook(avr::DataSpace& data, avr::CpuHooks* inner, const Mutation& m)
      : data_(data), inner_(inner), addr_(m.sram_addr), bit_(m.bit),
        left_(m.trigger_instr) {}

  avr::FaultKind on_fetch(std::uint32_t pc) override {
    if (left_ > 0 && --left_ == 0)
      data_.set_sram_raw(addr_, static_cast<std::uint8_t>(
                                    data_.sram_raw(addr_) ^ (1u << bit_)));
    return inner_ ? inner_->on_fetch(pc) : avr::FaultKind::None;
  }
  avr::WriteDecision on_write(std::uint16_t addr, std::uint8_t value,
                              avr::WriteKind kind) override {
    return inner_ ? inner_->on_write(addr, value, kind) : avr::WriteDecision{};
  }
  avr::ReadDecision on_read(std::uint16_t addr, avr::ReadKind kind) override {
    return inner_ ? inner_->on_read(addr, kind) : avr::ReadDecision{};
  }
  avr::FlowDecision on_flow(avr::FlowKind kind, std::uint32_t target,
                            std::uint32_t ret_addr) override {
    return inner_ ? inner_->on_flow(kind, target, ret_addr) : avr::FlowDecision{};
  }
  avr::FaultKind on_spm(std::uint32_t z) override {
    return inner_ ? inner_->on_spm(z) : avr::FaultKind::None;
  }
  void on_fault(const avr::FaultInfo& info) override {
    if (inner_) inner_->on_fault(info);
  }
  void on_retire(std::uint32_t pc, int cycles) override {
    if (inner_) inner_->on_retire(pc, cycles);
  }

 private:
  avr::DataSpace& data_;
  avr::CpuHooks* inner_;
  std::uint16_t addr_;
  std::uint8_t bit_;
  std::uint64_t left_;
};

MutantRecord run_one(const Prepared& P, const CampaignConfig& cfg, int index,
                     const Mutation& m, prof::Profiler* profiler) {
  MutantRecord rec;
  rec.index = index;
  rec.mutation = m;

  std::vector<std::uint16_t> words = P.clean.words;
  const bool code_mutation = m.kind != MutationKind::SramBitFlip;
  if (code_mutation) apply_mutation(words, m);

  // SFI line one: the verifier. A weakened campaign skips it to prove the
  // oracle notices what then slips through.
  if (cfg.mode == runtime::Mode::Sfi && code_mutation && !cfg.weakened) {
    const sfi::VerifyResult v = sfi::verify(words, P.clean.origin, P.entries_abs,
                                            P.stubs, P.policy, P.manifest);
    if (!v.ok) {
      rec.outcome = Outcome::Rejected;
      rec.detail = v.reason + " @" + std::to_string(v.at);
      return rec;
    }
  }

  Testbed tb(cfg.mode);
  tb.set_cycle_budget(cfg.cycle_budget);
  const Addrs a = setup(tb);
  if (a.victim != P.addrs.victim || a.buf != P.addrs.buf)
    throw std::runtime_error("inject: scenario addresses are not deterministic");

  // Hook stack (attach order → Cpu ▶ TracingHooks ▶ ProfilingHooks ▶ inner):
  // the campaign-lifetime profiler wraps the fresh testbed first, the
  // per-mutant tracer wraps it in turn, so coverage accumulates across runs.
  if (profiler) profiler->attach(tb.device().cpu(), tb.fabric());
  trace::TracerOptions topts;
  topts.ring_capacity = 512;
  topts.flight_depth = cfg.flight_depth;
  trace::Tracer tracer(topts);
  tracer.attach(tb.device().cpu(), tb.fabric());

  Program p;
  p.origin = P.clean.origin;
  p.words = words;
  tb.load_module_image(p, kSubjectDomain);

  if (cfg.weakened && cfg.mode == runtime::Mode::Umpu)
    tb.fabric()->regs().mem_map_config &= 0x7f;  // clear the MMC enable bit

  std::unique_ptr<SramFlipHook> flip;
  avr::CpuHooks* saved = nullptr;
  if (m.kind == MutationKind::SramBitFlip) {
    saved = tb.device().cpu().hooks();
    flip = std::make_unique<SramFlipHook>(tb.device().data(), saved, m);
    tb.device().cpu().set_hooks(flip.get());
  }
  const CallResult r = tb.call_module(P.entry, kSubjectDomain, P.addrs.buf);
  if (flip) tb.device().cpu().set_hooks(saved);

  rec.fault = r.faulted ? r.fault : avr::FaultKind::None;
  rec.value = r.value;

  const std::vector<std::uint16_t> div = P.oracle.diff(tb);
  if (!div.empty()) {
    rec.outcome = Outcome::Escape;
    rec.divergent.assign(div.begin(),
                         div.size() > 8 ? div.begin() + 8 : div.end());
    rec.detail = describe(m) + "; " + std::to_string(div.size()) +
                 " protected bytes diverged\n" +
                 trace::flight_record_text(tracer, &tb.device().flash());
  } else if (r.faulted && r.fault == avr::FaultKind::Watchdog) {
    rec.outcome = Outcome::Hung;
  } else if (r.faulted) {
    rec.outcome = Outcome::Contained;
  } else {
    rec.outcome = Outcome::Benign;
  }
  tracer.detach();
  if (profiler) profiler->detach();
  return rec;
}

CampaignReport run(const CampaignConfig& cfg, const Prepared& P,
                   const std::vector<Mutation>& plan) {
  CampaignReport rep;
  rep.config = cfg;
  rep.protected_bytes = P.oracle.protected_bytes();
  rep.golden_value = P.golden_value;
  rep.golden_instructions = P.golden_instrs;
  rep.mutants.reserve(plan.size());

  // One profiler for the whole campaign: coverage of the clean subject image
  // accumulates across every mutant's fresh Testbed.
  std::unique_ptr<prof::Profiler> profiler;
  if (cfg.coverage) {
    prof::ProfilerOptions popts;
    popts.sample_interval = 0;  // campaigns want coverage, not counter tracks
    popts.track_pcs = false;
    profiler = std::make_unique<prof::Profiler>(popts);
    prof::RegionSpec spec;
    spec.name = "subject";
    spec.domain = kSubjectDomain;
    spec.origin = P.clean.origin;
    spec.words = P.clean.words;
    spec.entries = P.entries_abs;
    spec.stubs = cfg.mode == runtime::Mode::Sfi ? &P.stubs : nullptr;
    spec.manifest = cfg.mode == runtime::Mode::Sfi ? &P.manifest : nullptr;
    profiler->add_region(spec);
  }

  for (std::size_t i = 0; i < plan.size(); ++i) {
    MutantRecord rec = run_one(P, cfg, static_cast<int>(i), plan[i], profiler.get());
    ++rep.counts[static_cast<int>(rec.outcome)];
    rep.mutants.push_back(std::move(rec));
  }
  if (profiler) rep.coverage = prof::summarize_coverage(*profiler, 0);
  return rep;
}

}  // namespace

CampaignReport run_campaign(const CampaignConfig& config) {
  const Prepared P = prepare(config);
  const runtime::Layout L{};  // the campaign always runs the default layout
  PlanContext ctx;
  ctx.words = P.clean.words;
  ctx.origin = P.clean.origin;
  ctx.jt_lo = L.jt_base;
  ctx.jt_hi = L.jt_end();
  ctx.buf_lo = P.addrs.buf;
  ctx.buf_hi = static_cast<std::uint16_t>(P.addrs.buf + kBufBytes);
  ctx.stack_lo = static_cast<std::uint16_t>(L.ram_end - kStackWindow);
  ctx.stack_hi = L.ram_end;
  ctx.instr_count = P.golden_instrs;
  const std::vector<Mutation> plan = plan_campaign(ctx, config.seed, config.count);
  return run(config, P, plan);
}

CampaignReport run_campaign(const CampaignConfig& config,
                            const std::vector<Mutation>& plan) {
  const Prepared P = prepare(config);
  return run(config, P, plan);
}

Mutation store_escape_mutation(const CampaignConfig& config) {
  const Prepared P = prepare(config);
  assembler::Assembler one;
  one.st_y_inc(assembler::r22);
  Mutation m;
  m.kind = MutationKind::OpcodeSub;
  m.word_index = P.victim_ld_index;
  m.new_word = one.assemble().words.at(0);
  return m;
}

}  // namespace harbor::inject
