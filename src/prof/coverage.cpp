#include "prof/coverage.h"

#include "trace/json.h"

namespace harbor::prof {

namespace json = trace::json;

std::uint32_t CoverageSummary::guards_covered() const {
  std::uint32_t n = 0;
  for (const GuardSite& g : guards)
    if (g.hits > 0) ++n;
  return n;
}

std::vector<GuardSite> CoverageSummary::uncovered_guards() const {
  std::vector<GuardSite> out;
  for (const GuardSite& g : guards)
    if (g.hits == 0) out.push_back(g);
  return out;
}

double CoverageSummary::guard_coverage() const {
  if (guards.empty()) return 1.0;
  return static_cast<double>(guards_covered()) / static_cast<double>(guards.size());
}

std::string CoverageSummary::to_json() const {
  std::string out = "{";
  json::Joiner j(out);
  json::kv(out, j, "region", region);
  json::kv(out, j, "protection", std::string(sfi ? "sfi" : "umpu"));
  json::kv(out, j, "blocks_total", std::uint64_t{blocks_total});
  json::kv(out, j, "blocks_covered", std::uint64_t{blocks_covered});
  json::kv(out, j, "guards_total", std::uint64_t{guards_total()});
  json::kv(out, j, "guards_covered", std::uint64_t{guards_covered()});
  json::kv(out, j, "retires", retires);
  json::kv(out, j, "cycles", cycles);
  j.item();
  out += "\"guards\":[";
  {
    json::Joiner g(out);
    for (const GuardSite& s : guards) {
      g.item();
      out += "{";
      json::Joiner f(out);
      json::kv(out, f, "off", std::uint64_t{s.off});
      json::kv(out, f, "kind", std::string(guard_kind_name(s.kind)));
      json::kv(out, f, "hits", s.hits);
      out += "}";
    }
  }
  out += "]";
  j.item();
  out += "\"uncovered_guards\":[";
  {
    json::Joiner g(out);
    for (const GuardSite& s : guards) {
      if (s.hits != 0) continue;
      g.item();
      out += "{";
      json::Joiner f(out);
      json::kv(out, f, "off", std::uint64_t{s.off});
      json::kv(out, f, "kind", std::string(guard_kind_name(s.kind)));
      out += "}";
    }
  }
  out += "]";
  j.item();
  out += "\"fault_kinds\":[";
  {
    json::Joiner g(out);
    for (int k = 0; k < avr::kFaultKindCount; ++k) {
      if (fault_counts[static_cast<std::size_t>(k)] == 0) continue;
      g.item();
      out += "{";
      json::Joiner f(out);
      json::kv(out, f, "kind",
               std::string(avr::fault_kind_name(static_cast<avr::FaultKind>(k))));
      json::kv(out, f, "count", fault_counts[static_cast<std::size_t>(k)]);
      out += "}";
    }
  }
  out += "]}";
  return out;
}

CoverageSummary summarize_coverage(const Profiler& p, std::uint32_t index) {
  CoverageSummary s;
  const Region& r = p.regions().at(index);
  s.region = r.name;
  s.sfi = r.sfi;
  s.blocks_total = r.blocks_total();
  s.blocks_covered = r.blocks_covered();
  s.retires = r.retires;
  s.cycles = r.cycles;
  s.guards = r.guards;
  s.fault_counts = p.fault_counts();
  return s;
}

}  // namespace harbor::prof
