#include "prof/export.h"

#include <algorithm>
#include <cstdio>

#include "trace/json.h"

namespace harbor::prof {

namespace json = trace::json;

namespace {

std::string hex_off(std::uint32_t off) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%04x", off);
  return buf;
}

void flame_node(std::string& out, const std::string& name, std::uint64_t value) {
  out += "{\"name\":\"" + json::escape(name) + "\",\"value\":" + std::to_string(value);
}

}  // namespace

std::string flame_json(const Profiler& p) {
  // all → region (or "outside regions") → basic block. Values are inclusive
  // cycles; children always sum to their parent, so the hierarchy loads
  // directly into d3-flame-graph / speedscope.
  std::string out;
  flame_node(out, "all", p.attributed_cycles());
  out += ",\"children\":[";
  json::Joiner regions(out);
  std::uint64_t in_regions = 0;
  for (const Region& r : p.regions()) {
    in_regions += r.cycles;
    regions.item();
    flame_node(out, r.name, r.cycles);
    out += ",\"children\":[";
    json::Joiner blocks(out);
    std::uint64_t in_blocks = 0;
    const auto& bbs = r.cfg.blocks();
    for (std::size_t b = 0; b < bbs.size(); ++b) {
      if (r.block_cycles[b] == 0) continue;
      in_blocks += r.block_cycles[b];
      blocks.item();
      flame_node(out, "bb@" + hex_off(bbs[b].start_off), r.block_cycles[b]);
      out += "}";
    }
    // Retirements at non-boundary offsets (mutated images) stay attributable.
    if (r.cycles > in_blocks) {
      blocks.item();
      flame_node(out, "(off-cfg)", r.cycles - in_blocks);
      out += "}";
    }
    out += "]}";
  }
  if (p.attributed_cycles() > in_regions) {
    regions.item();
    flame_node(out, "(outside regions)", p.attributed_cycles() - in_regions);
    out += "}";
  }
  out += "]}";
  return out;
}

std::vector<trace::CounterTrack> domain_counter_tracks(const Profiler& p) {
  std::vector<trace::CounterTrack> tracks;
  for (int d = 0; d < 8; ++d) {
    if (p.instr_in_domain()[static_cast<std::size_t>(d)] == 0) continue;
    trace::CounterTrack t;
    t.name = "prof cycles domain " + std::to_string(d);
    std::uint64_t prev = 0;
    for (const DomainSample& s : p.samples()) {
      const std::uint64_t cum = s.cycles_in_domain[static_cast<std::size_t>(d)];
      t.samples.emplace_back(s.cycle, static_cast<double>(cum - prev));
      prev = cum;
    }
    if (!t.samples.empty()) tracks.push_back(std::move(t));
  }
  return tracks;
}

std::string profile_json(const Profiler& p, const std::string& mode) {
  std::string out = "{";
  json::Joiner j(out);
  json::kv(out, j, "schema", std::string("harbor-prof-report-v1"));
  json::kv(out, j, "mode", mode);

  const std::uint64_t window = p.window_cycles();
  const std::uint64_t attributed = p.attributed_cycles();
  const double err_pct =
      window ? 100.0 *
                   static_cast<double>(window > attributed ? window - attributed
                                                           : attributed - window) /
                   static_cast<double>(window)
             : 0.0;
  j.item();
  out += "\"totals\":{";
  {
    json::Joiner t(out);
    json::kv(out, t, "window_cycles", window);
    json::kv(out, t, "attributed_cycles", attributed);
    json::kv(out, t, "attribution_error_pct", err_pct);
    json::kv(out, t, "instructions", p.retires());
    json::kv(out, t, "instr_cycles_p50", p.retire_cost().percentile(0.50));
    json::kv(out, t, "instr_cycles_p90", p.retire_cost().percentile(0.90));
    json::kv(out, t, "instr_cycles_p99", p.retire_cost().percentile(0.99));
  }
  out += "}";

  j.item();
  out += "\"domains\":[";
  {
    json::Joiner d(out);
    for (int i = 0; i < 8; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (p.instr_in_domain()[idx] == 0 && p.cycles_in_domain()[idx] == 0) continue;
      d.item();
      out += "{";
      json::Joiner f(out);
      json::kv(out, f, "domain", i);
      json::kv(out, f, "cycles", p.cycles_in_domain()[idx]);
      json::kv(out, f, "instructions", p.instr_in_domain()[idx]);
      json::kv(out, f, "share_pct",
               attributed ? 100.0 * static_cast<double>(p.cycles_in_domain()[idx]) /
                                static_cast<double>(attributed)
                          : 0.0);
      out += "}";
    }
  }
  out += "]";

  j.item();
  out += "\"regions\":[";
  {
    json::Joiner rj(out);
    for (const Region& r : p.regions()) {
      rj.item();
      out += "{";
      json::Joiner f(out);
      json::kv(out, f, "name", r.name);
      json::kv(out, f, "domain", int{r.domain});
      json::kv(out, f, "origin", std::uint64_t{r.origin});
      json::kv(out, f, "size", std::uint64_t{r.size});
      json::kv(out, f, "protection", std::string(r.sfi ? "sfi" : "umpu"));
      json::kv(out, f, "cycles", r.cycles);
      json::kv(out, f, "instructions", r.retires);
      json::kv(out, f, "blocks_total", std::uint64_t{r.blocks_total()});
      json::kv(out, f, "blocks_covered", std::uint64_t{r.blocks_covered()});
      json::kv(out, f, "guards_total", std::uint64_t{r.guards.size()});
      json::kv(out, f, "guards_covered", std::uint64_t{r.guards_covered()});
      json::kv(out, f, "guards_elided", std::uint64_t{r.guards_elided()});
      f.item();
      out += "\"guards\":[";
      {
        json::Joiner g(out);
        for (const GuardSite& s : r.guards) {
          g.item();
          out += "{";
          json::Joiner gf(out);
          json::kv(out, gf, "off", std::uint64_t{s.off});
          json::kv(out, gf, "kind", std::string(guard_kind_name(s.kind)));
          json::kv(out, gf, "hits", s.hits);
          json::kv(out, gf, "elided", s.elided);
          out += "}";
        }
      }
      out += "]";
      f.item();
      out += "\"uncovered_guards\":[";
      {
        json::Joiner g(out);
        for (const GuardSite* s : r.uncovered_guards()) {
          g.item();
          out += "{";
          json::Joiner gf(out);
          json::kv(out, gf, "off", std::uint64_t{s->off});
          json::kv(out, gf, "kind", std::string(guard_kind_name(s->kind)));
          out += "}";
        }
      }
      out += "]}";
    }
  }
  out += "]";

  j.item();
  out += "\"fault_kinds\":[";
  {
    json::Joiner fj(out);
    for (int k = 0; k < avr::kFaultKindCount; ++k) {
      const auto n = p.fault_counts()[static_cast<std::size_t>(k)];
      if (n == 0) continue;
      fj.item();
      out += "{";
      json::Joiner f(out);
      json::kv(out, f, "kind",
               std::string(avr::fault_kind_name(static_cast<avr::FaultKind>(k))));
      json::kv(out, f, "count", n);
      out += "}";
    }
  }
  out += "]";

  j.item();
  out += "\"top_pcs\":[";
  {
    std::vector<std::pair<std::uint32_t, PcStat>> top(p.pc_stats().begin(),
                                                      p.pc_stats().end());
    std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
      if (a.second.cycles != b.second.cycles) return a.second.cycles > b.second.cycles;
      return a.first < b.first;
    });
    if (top.size() > 16) top.resize(16);
    json::Joiner tj(out);
    for (const auto& [pc, stat] : top) {
      tj.item();
      out += "{";
      json::Joiner f(out);
      json::kv(out, f, "pc", std::uint64_t{pc});
      json::kv(out, f, "cycles", stat.cycles);
      json::kv(out, f, "retires", stat.retires);
      out += "}";
    }
  }
  out += "]";

  j.item();
  out += "\"flame\":" + flame_json(p);
  out += "}";
  return out;
}

}  // namespace harbor::prof
