#pragma once
// Exporters for harbor::prof (DESIGN.md §12):
//
//   - profile_json: the harbor-prof-report-v1 document — attribution totals
//     (with the window-vs-attributed error the CI gate asserts on), per-
//     domain and per-region breakdowns, guard-site coverage, fault-kind
//     counts, top PCs, latency percentiles, and the flame tree.
//   - flame_json: just the d3-flame-graph {name, value, children} hierarchy
//     (all → region → basic block).
//   - domain_counter_tracks: cycles/domain-over-time as trace::CounterTrack
//     samples, rendered to Perfetto JSON by trace::perfetto_counters_json.

#include <string>
#include <vector>

#include "prof/profiler.h"
#include "trace/export.h"

namespace harbor::prof {

std::string profile_json(const Profiler& p, const std::string& mode);

std::string flame_json(const Profiler& p);

/// One track per domain that executed at least one instruction, each sample
/// holding the cycles spent in that domain during the preceding sample
/// window (so the viewer shows where time goes over time).
std::vector<trace::CounterTrack> domain_counter_tracks(const Profiler& p);

}  // namespace harbor::prof
