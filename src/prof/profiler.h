#pragma once
// harbor::prof — cycle-attribution profiler and coverage-map substrate.
//
// A Profiler owns a ProfilingHooks decorator interposed on the core's
// CpuHooks chain exactly like trace::TracingHooks:
//
//     Cpu ──▶ TracingHooks ──▶ ProfilingHooks ──▶ umpu::Fabric (or nothing)
//
// (stack order is attach order: whoever attaches last sits closest to the
// core; detach in LIFO order). The decorator forwards every callback to the
// inner sink unchanged, so a profiled run is cycle-identical to an
// unprofiled one, and the stock core pays nothing while detached — attach()
// swaps the hook pointer, detach() restores it.
//
// Attribution rides on CpuHooks::on_retire: for each retired instruction the
// profiler charges the cycles elapsed since the previous retirement (which
// folds interrupt-entry costs into the adjacent instruction) to the retiring
// PC, to the domain that executed it, and — when the PC falls inside a
// registered region — to the region's basic block (via an analysis::Cfg
// built at registration time). Summing any one of those three views
// reproduces the profiled cycle window exactly, which is what lets
// harbor-prof assert per-domain attribution against Cpu::cycle_count().
//
// Regions double as coverage maps: registration extracts the image's guard
// sites — the SFI check sequences (calls/jumps into the trusted runtime's
// stub table) or the UMPU hardware check points (stores, calls, computed
// transfers, returns) — and every retirement marks blocks and guard sites
// hit. Campaigns keep one Profiler across many Testbed instances
// (attach/detach per run) to accumulate which guards a whole mutation or
// power-cut campaign actually exercised.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/cfg.h"
#include "avr/cpu.h"
#include "avr/hooks.h"
#include "sfi/elision.h"
#include "sfi/stub_table.h"
#include "trace/metrics.h"
#include "umpu/fabric.h"

namespace harbor::prof {

/// Classes of protection check sites recognisable in a module image.
/// Sfi* sites are the rewriter-inserted check sequences (software guards);
/// Umpu* sites are the instruction forms the hardware units intercept.
enum class GuardKind : std::uint8_t {
  SfiStoreStub,    ///< call into a harbor_st_* store-checker stub
  SfiElidedStore,  ///< raw store admitted under a verified elision proof (§13)
  SfiSaveRet,      ///< call harbor_save_ret prologue
  SfiRestoreRet,   ///< jmp harbor_restore_ret epilogue
  SfiCrossCall,    ///< call harbor_cross_call / into the jump table
  SfiIcallCheck,   ///< call harbor_icall_check
  SfiIjmpCheck,    ///< jmp harbor_ijmp_check
  UmpuStore,       ///< st/std/sts/push — memory-map + stack-bound check
  UmpuCall,        ///< call/rcall — cross-domain call check
  UmpuComputed,    ///< icall/ijmp — run-time jump-table check
  UmpuReturn,      ///< ret/reti — safe-stack return check
};

const char* guard_kind_name(GuardKind k);

/// One guard site inside a region, with its campaign-accumulated hit count.
/// `elided` marks a protection obligation discharged statically (a store the
/// verifier re-proved safe) rather than by a run-time check sequence.
struct GuardSite {
  std::uint32_t off = 0;  ///< module-relative word offset
  GuardKind kind = GuardKind::UmpuStore;
  std::uint64_t hits = 0;
  bool elided = false;
};

/// A code region to attribute and cover. `stubs` non-null marks the image as
/// SFI-rewritten (guard sites are stub call sequences); null means the image
/// runs under hardware (or no) protection and guards are the checked
/// instruction forms themselves.
struct RegionSpec {
  std::string name;
  std::uint8_t domain = 0;
  std::uint32_t origin = 0;  ///< absolute word address the image is loaded at
  std::vector<std::uint16_t> words;
  std::vector<std::uint32_t> entries;  ///< absolute entry-point addresses
  const sfi::StubTable* stubs = nullptr;
  /// SFI only: the module's verified proof manifest. Raw stores at manifest
  /// offsets register as elided guard sites, so coverage and cost reports
  /// can tell a check that ran from a check that was proven away.
  const sfi::ProofManifest* manifest = nullptr;
};

struct Region {
  std::string name;
  std::uint8_t domain = 0;
  std::uint32_t origin = 0;
  std::uint32_t size = 0;  ///< words
  bool sfi = false;
  analysis::Cfg cfg;
  std::vector<GuardSite> guards;
  std::vector<std::uint64_t> block_cycles;   ///< by block index
  std::vector<std::uint64_t> block_retires;  ///< by block index
  std::uint64_t cycles = 0;
  std::uint64_t retires = 0;

  [[nodiscard]] std::uint32_t blocks_total() const;    ///< reachable blocks
  [[nodiscard]] std::uint32_t blocks_covered() const;  ///< reachable + executed
  [[nodiscard]] std::uint32_t guards_covered() const;
  [[nodiscard]] std::uint32_t guards_elided() const;  ///< statically discharged
  [[nodiscard]] std::vector<const GuardSite*> uncovered_guards() const;

 private:
  friend class Profiler;
  std::vector<std::int32_t> off_to_guard_;  ///< word offset -> guard idx or -1
};

struct ProfilerOptions {
  /// Cycles between per-domain counter-track samples (0 disables sampling).
  std::uint64_t sample_interval = 4096;
  /// Keep the per-PC cycle map (the flame/top views need it; campaigns that
  /// only want coverage can turn it off).
  bool track_pcs = true;
};

class Profiler;

/// Pass-through CpuHooks decorator (same contract as trace::TracingHooks):
/// forwards every callback to the inner sink unchanged and feeds retirements
/// and faults to the owning Profiler. Decisions are never altered.
class ProfilingHooks final : public avr::CpuHooks {
 public:
  explicit ProfilingHooks(Profiler& profiler) : profiler_(profiler) {}

  void set_inner(avr::CpuHooks* inner) { inner_ = inner; }
  [[nodiscard]] avr::CpuHooks* inner() const { return inner_; }

  avr::WriteDecision on_write(std::uint16_t addr, std::uint8_t value,
                              avr::WriteKind kind) override {
    return inner_ ? inner_->on_write(addr, value, kind) : avr::WriteDecision::allow();
  }
  avr::ReadDecision on_read(std::uint16_t addr, avr::ReadKind kind) override {
    return inner_ ? inner_->on_read(addr, kind) : avr::ReadDecision{};
  }
  avr::FlowDecision on_flow(avr::FlowKind kind, std::uint32_t target,
                            std::uint32_t ret_addr) override {
    return inner_ ? inner_->on_flow(kind, target, ret_addr) : avr::FlowDecision::normal();
  }
  avr::FaultKind on_fetch(std::uint32_t pc) override {
    return inner_ ? inner_->on_fetch(pc) : avr::FaultKind::None;
  }
  avr::FaultKind on_spm(std::uint32_t z) override {
    return inner_ ? inner_->on_spm(z) : avr::FaultKind::None;
  }
  void on_fault(const avr::FaultInfo& info) override;
  void on_retire(std::uint32_t pc, int cycles) override;

 private:
  Profiler& profiler_;
  avr::CpuHooks* inner_ = nullptr;
};

/// Per-PC attribution cell.
struct PcStat {
  std::uint64_t cycles = 0;
  std::uint64_t retires = 0;
};

/// One cumulative per-domain cycle snapshot (counter-track sample).
struct DomainSample {
  std::uint64_t cycle = 0;
  std::array<std::uint64_t, 8> cycles_in_domain{};
};

class Profiler {
 public:
  explicit Profiler(ProfilerOptions opts = {}) : opts_(opts), hooks_(*this) {}

  /// Register a region before (or between) attach windows. Builds the CFG
  /// and extracts guard sites. Returns the region index.
  std::uint32_t add_region(const RegionSpec& spec);

  /// Interpose on `cpu`'s hook chain, wrapping whatever sink is currently
  /// installed. Counters accumulate across attach/detach windows, so one
  /// Profiler can cover a whole campaign of fresh Testbeds.
  void attach(avr::Cpu& cpu, umpu::Fabric* fabric = nullptr);

  /// Restore the original hook sink and close the cycle window. Safe to call
  /// when not attached.
  void detach();
  [[nodiscard]] bool attached() const { return cpu_ != nullptr; }

  // --- accumulated results ---
  /// Cycles elapsed on the core while the profiler was attached.
  [[nodiscard]] std::uint64_t window_cycles() const;
  /// Cycles charged to retirements (== per-domain and per-PC sums).
  [[nodiscard]] std::uint64_t attributed_cycles() const { return attributed_cycles_; }
  [[nodiscard]] std::uint64_t retires() const { return retires_; }
  [[nodiscard]] const std::array<std::uint64_t, 8>& cycles_in_domain() const {
    return cycles_in_domain_;
  }
  [[nodiscard]] const std::array<std::uint64_t, 8>& instr_in_domain() const {
    return instr_in_domain_;
  }
  [[nodiscard]] const std::unordered_map<std::uint32_t, PcStat>& pc_stats() const {
    return pc_stats_;
  }
  [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }
  [[nodiscard]] const std::vector<DomainSample>& samples() const { return samples_; }
  /// Per-retirement cycle-cost distribution (percentile() gives the latency
  /// summary lines in harbor-prof).
  [[nodiscard]] const trace::Histogram& retire_cost() const { return retire_cost_; }
  /// Faults observed while attached, by FaultKind index — the campaign's
  /// fault-handler path coverage.
  [[nodiscard]] const std::array<std::uint64_t, avr::kFaultKindCount>& fault_counts() const {
    return fault_counts_;
  }
  [[nodiscard]] const ProfilerOptions& options() const { return opts_; }

 private:
  friend class ProfilingHooks;

  void note_retire(std::uint32_t pc, int cycles);
  void note_fault(const avr::FaultInfo& info);
  [[nodiscard]] Region* region_of(std::uint32_t pc);

  ProfilerOptions opts_;
  ProfilingHooks hooks_;

  avr::Cpu* cpu_ = nullptr;
  umpu::Fabric* fabric_ = nullptr;

  std::uint64_t attach_cycle_ = 0;    ///< cycle_count at attach
  std::uint64_t last_cycle_ = 0;      ///< cycle_count at previous retirement
  std::uint64_t closed_windows_ = 0;  ///< cycles from already-detached windows
  std::uint64_t last_sample_ = 0;

  std::uint64_t attributed_cycles_ = 0;
  std::uint64_t retires_ = 0;
  std::array<std::uint64_t, 8> cycles_in_domain_{};
  std::array<std::uint64_t, 8> instr_in_domain_{};
  std::unordered_map<std::uint32_t, PcStat> pc_stats_;
  std::vector<Region> regions_;
  std::vector<DomainSample> samples_;
  trace::Histogram retire_cost_;
  std::array<std::uint64_t, avr::kFaultKindCount> fault_counts_{};
};

}  // namespace harbor::prof
