#pragma once
// Campaign coverage maps: a plain-data summary of what one profiled region's
// blocks, guard sites and fault-handler paths a campaign actually exercised,
// detachable from the Profiler so campaign reports can carry it.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "prof/profiler.h"

namespace harbor::prof {

struct CoverageSummary {
  std::string region;
  bool sfi = false;
  std::uint32_t blocks_total = 0;    ///< reachable basic blocks
  std::uint32_t blocks_covered = 0;  ///< reachable blocks with >= 1 retirement
  std::uint64_t retires = 0;
  std::uint64_t cycles = 0;
  std::vector<GuardSite> guards;  ///< all guard sites, with hit counts
  /// Faults raised during the campaign, by FaultKind index — which
  /// fault-handler paths were reached.
  std::array<std::uint64_t, avr::kFaultKindCount> fault_counts{};

  [[nodiscard]] std::uint32_t guards_total() const {
    return static_cast<std::uint32_t>(guards.size());
  }
  [[nodiscard]] std::uint32_t guards_covered() const;
  [[nodiscard]] std::vector<GuardSite> uncovered_guards() const;
  /// Covered/total as a fraction in [0,1]; 1 when there are no guards.
  [[nodiscard]] double guard_coverage() const;

  /// JSON object: region, block/guard covered-vs-total, per-site hit list,
  /// never-exercised guards, and fault-kind counts.
  [[nodiscard]] std::string to_json() const;
};

/// Snapshot region `index` of `p` (with the profiler's accumulated fault
/// counts) into a CoverageSummary.
CoverageSummary summarize_coverage(const Profiler& p, std::uint32_t index);

}  // namespace harbor::prof
