#include "prof/profiler.h"

#include <algorithm>

namespace harbor::prof {

const char* guard_kind_name(GuardKind k) {
  switch (k) {
    case GuardKind::SfiStoreStub: return "sfi-store-stub";
    case GuardKind::SfiElidedStore: return "sfi-elided-store";
    case GuardKind::SfiSaveRet: return "sfi-save-ret";
    case GuardKind::SfiRestoreRet: return "sfi-restore-ret";
    case GuardKind::SfiCrossCall: return "sfi-cross-call";
    case GuardKind::SfiIcallCheck: return "sfi-icall-check";
    case GuardKind::SfiIjmpCheck: return "sfi-ijmp-check";
    case GuardKind::UmpuStore: return "umpu-store-check";
    case GuardKind::UmpuCall: return "umpu-call-check";
    case GuardKind::UmpuComputed: return "umpu-computed-check";
    case GuardKind::UmpuReturn: return "umpu-return-check";
  }
  return "?";
}

namespace {

/// Absolute word target of a direct transfer, or nullopt for everything else.
std::optional<std::uint32_t> direct_target(const analysis::InstrAt& ia, std::uint32_t origin) {
  switch (ia.ins.op) {
    case avr::Mnemonic::Jmp:
    case avr::Mnemonic::Call:
      return ia.ins.k32;
    case avr::Mnemonic::Rjmp:
    case avr::Mnemonic::Rcall:
      return origin + ia.off + 1 + static_cast<std::int32_t>(ia.ins.k);
    default:
      return std::nullopt;
  }
}

/// Guard class of one instruction in an SFI-rewritten image: the check
/// sequences are calls/jumps into the trusted runtime's stub table, so
/// classification is by transfer target.
std::optional<GuardKind> sfi_guard(const analysis::InstrAt& ia, std::uint32_t origin,
                                   const sfi::StubTable& stubs) {
  const auto target = direct_target(ia, origin);
  if (!target) return std::nullopt;
  if (stubs.is_store_stub(*target)) return GuardKind::SfiStoreStub;
  if (*target == stubs.save_ret) return GuardKind::SfiSaveRet;
  if (*target == stubs.restore_ret) return GuardKind::SfiRestoreRet;
  if (*target == stubs.cross_call || stubs.in_jump_table(*target))
    return GuardKind::SfiCrossCall;
  if (*target == stubs.icall_check) return GuardKind::SfiIcallCheck;
  if (*target == stubs.ijmp_check) return GuardKind::SfiIjmpCheck;
  return std::nullopt;
}

/// Guard class of one instruction under UMPU hardware protection: the check
/// points are the instruction forms the bus/flow units intercept.
std::optional<GuardKind> umpu_guard(const analysis::InstrAt& ia) {
  const avr::Mnemonic op = ia.ins.op;
  if (avr::is_data_store(op) || op == avr::Mnemonic::Push) return GuardKind::UmpuStore;
  if (op == avr::Mnemonic::Call || op == avr::Mnemonic::Rcall) return GuardKind::UmpuCall;
  if (op == avr::Mnemonic::Icall || op == avr::Mnemonic::Ijmp)
    return GuardKind::UmpuComputed;
  if (avr::is_return(op)) return GuardKind::UmpuReturn;
  return std::nullopt;
}

}  // namespace

std::uint32_t Region::blocks_total() const {
  return cfg.reachable_blocks();
}

std::uint32_t Region::blocks_covered() const {
  std::uint32_t n = 0;
  const auto& blocks = cfg.blocks();
  for (std::size_t b = 0; b < blocks.size(); ++b)
    if (blocks[b].reachable && block_retires[b] > 0) ++n;
  return n;
}

std::uint32_t Region::guards_covered() const {
  std::uint32_t n = 0;
  for (const GuardSite& g : guards)
    if (g.hits > 0) ++n;
  return n;
}

std::uint32_t Region::guards_elided() const {
  std::uint32_t n = 0;
  for (const GuardSite& g : guards)
    if (g.elided) ++n;
  return n;
}

std::vector<const GuardSite*> Region::uncovered_guards() const {
  std::vector<const GuardSite*> out;
  for (const GuardSite& g : guards)
    if (g.hits == 0) out.push_back(&g);
  return out;
}

std::uint32_t Profiler::add_region(const RegionSpec& spec) {
  Region r;
  r.name = spec.name;
  r.domain = spec.domain;
  r.origin = spec.origin;
  r.size = static_cast<std::uint32_t>(spec.words.size());
  r.sfi = spec.stubs != nullptr;
  const sfi::StubTable empty{};
  r.cfg = analysis::Cfg::build(spec.words, spec.origin, spec.entries,
                               spec.stubs ? *spec.stubs : empty);
  r.block_cycles.assign(r.cfg.blocks().size(), 0);
  r.block_retires.assign(r.cfg.blocks().size(), 0);
  r.off_to_guard_.assign(r.size, -1);
  for (const analysis::InstrAt& ia : r.cfg.instructions()) {
    auto kind = spec.stubs ? sfi_guard(ia, spec.origin, *spec.stubs) : umpu_guard(ia);
    bool elided = false;
    // A raw data store in an SFI image at a manifest offset is a protection
    // obligation discharged statically: count it as an (elided) guard site
    // so check-density reports see where the stubs used to be.
    if (!kind && spec.stubs && spec.manifest && avr::is_data_store(ia.ins.op) &&
        std::any_of(spec.manifest->sites.begin(), spec.manifest->sites.end(),
                    [&](const sfi::ProofSite& s) { return s.off == ia.off; })) {
      kind = GuardKind::SfiElidedStore;
      elided = true;
    }
    if (!kind) continue;
    r.off_to_guard_[ia.off] = static_cast<std::int32_t>(r.guards.size());
    r.guards.push_back(GuardSite{ia.off, *kind, 0, elided});
  }
  regions_.push_back(std::move(r));
  return static_cast<std::uint32_t>(regions_.size() - 1);
}

void Profiler::attach(avr::Cpu& cpu, umpu::Fabric* fabric) {
  detach();
  cpu_ = &cpu;
  fabric_ = fabric;
  hooks_.set_inner(cpu.hooks());
  cpu.set_hooks(&hooks_);
  attach_cycle_ = cpu.cycle_count();
  last_cycle_ = attach_cycle_;
  last_sample_ = attach_cycle_;
}

void Profiler::detach() {
  if (!cpu_) return;
  if (cpu_->hooks() == &hooks_) cpu_->set_hooks(hooks_.inner());
  closed_windows_ += cpu_->cycle_count() - attach_cycle_;
  cpu_ = nullptr;
  fabric_ = nullptr;
}

std::uint64_t Profiler::window_cycles() const {
  return closed_windows_ + (cpu_ ? cpu_->cycle_count() - attach_cycle_ : 0);
}

Region* Profiler::region_of(std::uint32_t pc) {
  for (Region& r : regions_)
    if (pc >= r.origin && pc < r.origin + r.size) return &r;
  return nullptr;
}

void Profiler::note_retire(std::uint32_t pc, int /*cycles*/) {
  // Charge the full cycle delta since the previous retirement rather than
  // the instruction's own cost: that folds interrupt-entry cycles (which the
  // core accrues between retirements) into the adjacent instruction, so the
  // per-PC / per-domain / per-block sums reproduce the window exactly.
  const std::uint64_t now = cpu_->cycle_count();
  const std::uint64_t delta = now - last_cycle_;
  last_cycle_ = now;
  attributed_cycles_ += delta;
  ++retires_;
  retire_cost_.record(delta);

  Region* r = region_of(pc);
  const std::uint8_t dom =
      fabric_ ? static_cast<std::uint8_t>(fabric_->current_domain() & 7)
              : (r ? static_cast<std::uint8_t>(r->domain & 7) : avr::ports::kTrustedDomain);
  cycles_in_domain_[dom] += delta;
  ++instr_in_domain_[dom];

  if (opts_.track_pcs) {
    PcStat& s = pc_stats_[pc];
    s.cycles += delta;
    ++s.retires;
  }

  if (r) {
    r->cycles += delta;
    ++r->retires;
    const std::uint32_t off = pc - r->origin;
    if (const auto idx = r->cfg.instr_at(off)) {
      const std::uint32_t b = r->cfg.block_of_instr(*idx);
      r->block_cycles[b] += delta;
      ++r->block_retires[b];
    }
    if (off < r->off_to_guard_.size() && r->off_to_guard_[off] >= 0)
      ++r->guards[static_cast<std::size_t>(r->off_to_guard_[off])].hits;
  }

  if (opts_.sample_interval && now - last_sample_ >= opts_.sample_interval) {
    samples_.push_back(DomainSample{now, cycles_in_domain_});
    last_sample_ = now;
  }
}

void Profiler::note_fault(const avr::FaultInfo& info) {
  const int k = static_cast<int>(info.kind);
  if (k >= 0 && k < avr::kFaultKindCount) ++fault_counts_[static_cast<std::size_t>(k)];
}

void ProfilingHooks::on_fault(const avr::FaultInfo& info) {
  if (inner_) inner_->on_fault(info);
  profiler_.note_fault(info);
}

void ProfilingHooks::on_retire(std::uint32_t pc, int cycles) {
  if (inner_) inner_->on_retire(pc, cycles);
  profiler_.note_retire(pc, cycles);
}

}  // namespace harbor::prof
