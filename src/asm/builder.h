#pragma once
// Programmatic AVR macro-assembler.
//
// The Harbor guest runtime, the mini-SOS kernel and all benchmark guest
// programs are authored against this API (the repository has no avr-gcc).
// Labels support forward references; relative/absolute/immediate fixups are
// resolved at assemble() time.
//
//   Assembler a(/*origin=*/0);
//   auto loop = a.make_label("loop");
//   a.ldi(r16, 10);
//   a.bind(loop);
//   a.dec(r16);
//   a.brne(loop);
//   a.ret();
//   Program p = a.assemble();

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.h"
#include "avr/encoder.h"
#include "avr/instr.h"

namespace harbor::assembler {

/// Strongly-typed register operand.
struct Reg {
  std::uint8_t n;
  constexpr explicit Reg(std::uint8_t v) : n(v) {}
  friend constexpr bool operator==(Reg a, Reg b) { return a.n == b.n; }
};

// Register constants r0..r31 (X = r26:27, Y = r28:29, Z = r30:31).
inline constexpr Reg r0{0}, r1{1}, r2{2}, r3{3}, r4{4}, r5{5}, r6{6}, r7{7},
    r8{8}, r9{9}, r10{10}, r11{11}, r12{12}, r13{13}, r14{14}, r15{15},
    r16{16}, r17{17}, r18{18}, r19{19}, r20{20}, r21{21}, r22{22}, r23{23},
    r24{24}, r25{25}, r26{26}, r27{27}, r28{28}, r29{29}, r30{30}, r31{31};

/// Forward-referenceable code location.
class Label {
 public:
  Label() = default;

 private:
  friend class Assembler;
  explicit Label(int id) : id_(id) {}
  int id_ = -1;
};

class Assembler {
 public:
  explicit Assembler(std::uint32_t origin_words = 0) : origin_(origin_words) {}

  // --- labels & symbols ---
  Label make_label(std::string name = "");
  void bind(Label l);
  Label bind_here(std::string name = "");
  /// Current location as a word address.
  [[nodiscard]] std::uint32_t here() const {
    return origin_ + static_cast<std::uint32_t>(words_.size());
  }
  /// Record `name` = here() in the symbol table without creating a label.
  void mark(const std::string& name);

  // --- raw emission ---
  void emit(const avr::Instr& in);
  void dw(std::uint16_t w) { words_.push_back(w); }
  void align_even_label() {}  // flash is word-addressed; nothing to do
  /// Pad with NOPs until `here()` == `waddr` (must be >= here()).
  void pad_to(std::uint32_t waddr);

  // --- arithmetic / logic ---
  void add(Reg d, Reg r);
  void adc(Reg d, Reg r);
  void adiw(Reg d, std::uint8_t k);
  void sub(Reg d, Reg r);
  void subi(Reg d, std::uint8_t k);
  void sbc(Reg d, Reg r);
  void sbci(Reg d, std::uint8_t k);
  void sbiw(Reg d, std::uint8_t k);
  void and_(Reg d, Reg r);
  void andi(Reg d, std::uint8_t k);
  void or_(Reg d, Reg r);
  void ori(Reg d, std::uint8_t k);
  void eor(Reg d, Reg r);
  void com(Reg d);
  void neg(Reg d);
  void inc(Reg d);
  void dec(Reg d);
  void mul(Reg d, Reg r);
  void clr(Reg d) { eor(d, d); }
  void lsl(Reg d) { add(d, d); }
  void rol(Reg d) { adc(d, d); }
  void lsr(Reg d);
  void ror(Reg d);
  void asr(Reg d);
  void swap(Reg d);
  void tst(Reg d) { and_(d, d); }

  // --- compare ---
  void cp(Reg d, Reg r);
  void cpc(Reg d, Reg r);
  void cpi(Reg d, std::uint8_t k);
  void cpse(Reg d, Reg r);

  // --- data transfer ---
  void mov(Reg d, Reg r);
  void movw(Reg d, Reg r);
  void ldi(Reg d, std::uint8_t k);
  /// Load a 16-bit constant into a register pair (two LDIs).
  void ldi16(Reg lo, std::uint16_t value);
  /// Load a label's flash word address into a register pair (for ICALL/IJMP).
  void ldi_code_ptr(Reg lo, Label target);
  /// LDI of the low/high byte of a label's word address (lo8/hi8 in text asm).
  void ldi_lo8w(Reg d, Label target);
  void ldi_hi8w(Reg d, Label target);
  void ld_x(Reg d);
  void ld_x_inc(Reg d);
  void ld_x_dec(Reg d);
  void ld_y_inc(Reg d);
  void ld_y_dec(Reg d);
  void ldd_y(Reg d, std::uint8_t q);
  void ld_z_inc(Reg d);
  void ld_z_dec(Reg d);
  void ldd_z(Reg d, std::uint8_t q);
  void ld_y(Reg d) { ldd_y(d, 0); }
  void ld_z(Reg d) { ldd_z(d, 0); }
  void lds(Reg d, std::uint16_t addr);
  void st_x(Reg r);
  void st_x_inc(Reg r);
  void st_x_dec(Reg r);
  void st_y_inc(Reg r);
  void st_y_dec(Reg r);
  void std_y(Reg r, std::uint8_t q);
  void st_z_inc(Reg r);
  void st_z_dec(Reg r);
  void std_z(Reg r, std::uint8_t q);
  void st_y(Reg r) { std_y(r, 0); }
  void st_z(Reg r) { std_z(r, 0); }
  void sts(std::uint16_t addr, Reg r);
  void lpm(Reg d);
  void lpm_inc(Reg d);
  void in(Reg d, std::uint8_t port);
  void out(std::uint8_t port, Reg r);
  void push(Reg r);
  void pop(Reg d);

  // --- bit ops ---
  void sbi(std::uint8_t port, std::uint8_t bit);
  void cbi(std::uint8_t port, std::uint8_t bit);
  void sbic(std::uint8_t port, std::uint8_t bit);
  void sbis(std::uint8_t port, std::uint8_t bit);
  void sbrc(Reg r, std::uint8_t bit);
  void sbrs(Reg r, std::uint8_t bit);
  void bst(Reg d, std::uint8_t bit);
  void bld(Reg d, std::uint8_t bit);
  void sec();
  void clc();
  void sei();
  void cli();

  // --- control flow ---
  void rjmp(Label target);
  void rcall(Label target);
  void jmp(Label target);
  void call(Label target);
  void jmp_abs(std::uint32_t waddr);
  void call_abs(std::uint32_t waddr);
  void rjmp_abs(std::uint32_t waddr);  ///< relative encoding to a known address
  void ijmp();
  void icall();
  void ret();
  void reti();
  void brbs(std::uint8_t flag_bit, Label target);
  void brbc(std::uint8_t flag_bit, Label target);
  void breq(Label t) { brbs(1, t); }
  void brne(Label t) { brbc(1, t); }
  void brcs(Label t) { brbs(0, t); }
  void brcc(Label t) { brbc(0, t); }
  void brlo(Label t) { brbs(0, t); }
  void brsh(Label t) { brbc(0, t); }
  void brmi(Label t) { brbs(2, t); }
  void brpl(Label t) { brbc(2, t); }
  void brge(Label t) { brbc(4, t); }
  void brlt(Label t) { brbs(4, t); }

  // --- MCU ---
  void nop();
  void sleep();
  void brk();
  void wdr();
  void spm();

  /// Resolve fixups and produce the image. Throws std::runtime_error on
  /// unbound labels or out-of-range fixups.
  Program assemble();

 private:
  enum class FixKind : std::uint8_t {
    Rel12,     ///< rjmp/rcall word
    Rel7,      ///< conditional branch word
    Abs22,     ///< jmp/call second word (+ high bits in first)
    ImmLoW,    ///< ldi low byte of label word address
    ImmHiW,    ///< ldi high byte of label word address
  };
  struct Fixup {
    std::size_t word_index;
    FixKind kind;
    int label;
  };

  void emit_rel(avr::Mnemonic m, Label target, FixKind kind);
  std::uint32_t label_value(int id) const;

  std::uint32_t origin_;
  std::vector<std::uint16_t> words_;
  std::vector<std::int64_t> label_addr_;      // -1 = unbound (word address)
  std::vector<std::string> label_name_;
  std::vector<Fixup> fixups_;
  std::map<std::string, std::uint32_t> symbols_;
};

}  // namespace harbor::assembler
