#pragma once
// Execution tracer: records retired instructions (PC, disassembly, cycle
// cost, SP) into a bounded ring while driving a device, with an optional
// PC filter. The debugging companion to the simulator — used by examples
// and by tests that assert on executed instruction sequences.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "avr/device.h"

namespace harbor::assembler {

struct TraceEntry {
  std::uint64_t cycle = 0;  ///< core cycle count before the instruction
  std::uint32_t pc = 0;     ///< word address
  int cost = 0;             ///< cycles the instruction took
  std::uint16_t sp = 0;
  std::string text;         ///< disassembly
};

class Tracer {
 public:
  /// `capacity`: maximum retained entries (oldest dropped first).
  explicit Tracer(std::size_t capacity = 256) : capacity_(capacity) {}

  /// Restrict recording to PCs the predicate accepts (all, by default).
  void set_filter(std::function<bool(std::uint32_t pc)> f) { filter_ = std::move(f); }

  /// Step the device until it halts/exits or `max_cycles` elapse,
  /// recording as configured. Returns cycles executed.
  std::uint64_t run(avr::Device& dev, std::uint64_t max_cycles = 1'000'000);

  [[nodiscard]] const std::deque<TraceEntry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

  /// Render the trace, one line per entry.
  [[nodiscard]] std::string format() const;

 private:
  std::size_t capacity_;
  std::function<bool(std::uint32_t)> filter_;
  std::deque<TraceEntry> entries_;
};

}  // namespace harbor::assembler
