#include "asm/tracer.h"

#include <cstdio>

#include "asm/disasm.h"
#include "avr/decoder.h"

namespace harbor::assembler {

std::uint64_t Tracer::run(avr::Device& dev, std::uint64_t max_cycles) {
  std::uint64_t spent = 0;
  auto& cpu = dev.cpu();
  while (!cpu.halted() && !dev.guest_exit().exited && spent < max_cycles) {
    const std::uint32_t pc = cpu.pc();
    const std::uint64_t cycle = cpu.cycle_count();
    const std::uint16_t sp = cpu.sp();
    const avr::Instr in =
        avr::decode(dev.flash().read_word(pc), dev.flash().read_word(pc + 1));
    const int cost = dev.step().cycles;
    spent += static_cast<std::uint64_t>(cost);
    if (!filter_ || filter_(pc)) {
      entries_.push_back({cycle, pc, cost, sp, format_instr(in, pc)});
      if (entries_.size() > capacity_) entries_.pop_front();
    }
  }
  return spent;
}

std::string Tracer::format() const {
  std::string out;
  char buf[96];
  for (const TraceEntry& e : entries_) {
    std::snprintf(buf, sizeof buf, "%8llu  %05x  [%d] sp=%04x  %s\n",
                  static_cast<unsigned long long>(e.cycle), e.pc, e.cost, e.sp,
                  e.text.c_str());
    out += buf;
  }
  return out;
}

}  // namespace harbor::assembler
