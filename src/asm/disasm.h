#pragma once
// AVR disassembler: formats decoded instructions and flash ranges.

#include <cstdint>
#include <string>

#include "avr/instr.h"
#include "avr/memory.h"

namespace harbor::assembler {

/// Format one instruction. `pc` (word address of the instruction) resolves
/// relative targets to absolute addresses in the output.
std::string format_instr(const avr::Instr& in, std::uint32_t pc);

/// Disassemble `count` instructions starting at word address `pc`,
/// one per line, prefixed with the address.
std::string disassemble_range(const avr::Flash& flash, std::uint32_t pc, int count);

}  // namespace harbor::assembler
