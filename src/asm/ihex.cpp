#include "asm/ihex.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <vector>

namespace harbor::assembler {

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  throw std::runtime_error("ihex: bad hex digit");
}

std::uint8_t byte_at(std::string_view s, std::size_t pos) {
  if (pos + 1 >= s.size()) throw std::runtime_error("ihex: truncated record");
  return static_cast<std::uint8_t>(hex_digit(s[pos]) * 16 + hex_digit(s[pos + 1]));
}
}  // namespace

std::string to_intel_hex(const Program& p) {
  std::string out;
  char buf[16];
  // Byte image, little-endian words.
  std::vector<std::uint8_t> bytes;
  bytes.reserve(p.words.size() * 2);
  for (const std::uint16_t w : p.words) {
    bytes.push_back(static_cast<std::uint8_t>(w & 0xff));
    bytes.push_back(static_cast<std::uint8_t>(w >> 8));
  }
  const std::uint32_t base = p.origin * 2;
  for (std::size_t i = 0; i < bytes.size(); i += 16) {
    const std::size_t len = std::min<std::size_t>(16, bytes.size() - i);
    const std::uint32_t addr = base + static_cast<std::uint32_t>(i);
    std::uint8_t sum = static_cast<std::uint8_t>(len + (addr >> 8) + (addr & 0xff));
    std::snprintf(buf, sizeof buf, ":%02zX%04X00", len, addr & 0xffff);
    out += buf;
    for (std::size_t j = 0; j < len; ++j) {
      std::snprintf(buf, sizeof buf, "%02X", bytes[i + j]);
      out += buf;
      sum = static_cast<std::uint8_t>(sum + bytes[i + j]);
    }
    std::snprintf(buf, sizeof buf, "%02X\n", static_cast<std::uint8_t>(-sum));
    out += buf;
  }
  out += ":00000001FF\n";
  return out;
}

Program from_intel_hex(std::string_view text) {
  std::map<std::uint32_t, std::uint8_t> bytes;
  std::size_t pos = 0;
  bool eof = false;
  while (pos < text.size()) {
    // Find the next record.
    while (pos < text.size() && text[pos] != ':') ++pos;
    if (pos >= text.size()) break;
    if (eof) throw std::runtime_error("ihex: record after EOF");
    ++pos;
    const std::string_view rec = text.substr(pos);
    const std::uint8_t len = byte_at(rec, 0);
    const std::uint16_t addr =
        static_cast<std::uint16_t>(byte_at(rec, 2) << 8 | byte_at(rec, 4));
    const std::uint8_t type = byte_at(rec, 6);
    std::uint8_t sum = static_cast<std::uint8_t>(len + (addr >> 8) + (addr & 0xff) + type);
    if (type == 0x01) {
      eof = true;
      continue;
    }
    if (type != 0x00) throw std::runtime_error("ihex: unsupported record type");
    for (int i = 0; i < len; ++i) {
      const std::uint8_t b = byte_at(rec, 8 + 2 * static_cast<std::size_t>(i));
      bytes[static_cast<std::uint32_t>(addr) + static_cast<std::uint32_t>(i)] = b;
      sum = static_cast<std::uint8_t>(sum + b);
    }
    const std::uint8_t check = byte_at(rec, 8 + 2 * static_cast<std::size_t>(len));
    if (static_cast<std::uint8_t>(sum + check) != 0)
      throw std::runtime_error("ihex: checksum mismatch");
    pos += 8 + 2 * static_cast<std::size_t>(len);
  }
  if (!eof) throw std::runtime_error("ihex: missing EOF record");

  Program p;
  if (bytes.empty()) return p;
  const std::uint32_t first = bytes.begin()->first;
  if (first % 2 != 0) throw std::runtime_error("ihex: image does not start word aligned");
  const std::uint32_t last = bytes.rbegin()->first;
  p.origin = first / 2;
  const std::uint32_t nwords = (last - first) / 2 + 1;
  p.words.assign(nwords, 0xffff);
  for (const auto& [a, b] : bytes) {
    const std::uint32_t off = a - first;
    std::uint16_t& w = p.words[off / 2];
    if (off % 2 == 0)
      w = static_cast<std::uint16_t>((w & 0xff00) | b);
    else
      w = static_cast<std::uint16_t>((w & 0x00ff) | (b << 8));
  }
  return p;
}

}  // namespace harbor::assembler
