#include "asm/builder.h"

#include <stdexcept>

namespace harbor::assembler {

using avr::Instr;
using avr::Mnemonic;

namespace {
Instr mk(Mnemonic m) {
  Instr i;
  i.op = m;
  return i;
}
}  // namespace

Label Assembler::make_label(std::string name) {
  label_addr_.push_back(-1);
  label_name_.push_back(std::move(name));
  return Label(static_cast<int>(label_addr_.size()) - 1);
}

void Assembler::bind(Label l) {
  if (l.id_ < 0 || l.id_ >= static_cast<int>(label_addr_.size()))
    throw std::runtime_error("asm: bind of invalid label");
  if (label_addr_[static_cast<std::size_t>(l.id_)] >= 0)
    throw std::runtime_error("asm: label bound twice: " +
                             label_name_[static_cast<std::size_t>(l.id_)]);
  label_addr_[static_cast<std::size_t>(l.id_)] = here();
  const auto& name = label_name_[static_cast<std::size_t>(l.id_)];
  if (!name.empty()) symbols_[name] = here();
}

Label Assembler::bind_here(std::string name) {
  Label l = make_label(std::move(name));
  bind(l);
  return l;
}

void Assembler::mark(const std::string& name) { symbols_[name] = here(); }

void Assembler::emit(const Instr& in) {
  const avr::Encoding e = avr::encode(in);
  for (int i = 0; i < e.words; ++i) words_.push_back(e.word[static_cast<std::size_t>(i)]);
}

void Assembler::pad_to(std::uint32_t waddr) {
  if (waddr < here()) throw std::runtime_error("asm: pad_to behind current location");
  while (here() < waddr) emit(mk(Mnemonic::Nop));
}

// --- straightforward emitters -------------------------------------------------

#define EMIT_RR(fn, M)                         \
  void Assembler::fn(Reg d, Reg r) {           \
    Instr i = mk(Mnemonic::M);                 \
    i.d = d.n;                                 \
    i.r = r.n;                                 \
    emit(i);                                   \
  }
EMIT_RR(add, Add) EMIT_RR(adc, Adc) EMIT_RR(sub, Sub) EMIT_RR(sbc, Sbc)
EMIT_RR(and_, And) EMIT_RR(or_, Or) EMIT_RR(eor, Eor) EMIT_RR(mul, Mul)
EMIT_RR(cp, Cp) EMIT_RR(cpc, Cpc) EMIT_RR(cpse, Cpse) EMIT_RR(mov, Mov)
EMIT_RR(movw, Movw)
#undef EMIT_RR

#define EMIT_RI(fn, M)                          \
  void Assembler::fn(Reg d, std::uint8_t k) {   \
    Instr i = mk(Mnemonic::M);                  \
    i.d = d.n;                                  \
    i.imm = k;                                  \
    emit(i);                                    \
  }
EMIT_RI(subi, Subi) EMIT_RI(sbci, Sbci) EMIT_RI(andi, Andi) EMIT_RI(ori, Ori)
EMIT_RI(cpi, Cpi) EMIT_RI(ldi, Ldi) EMIT_RI(adiw, Adiw) EMIT_RI(sbiw, Sbiw)
#undef EMIT_RI

#define EMIT_R(fn, M)              \
  void Assembler::fn(Reg d) {      \
    Instr i = mk(Mnemonic::M);     \
    i.d = d.n;                     \
    emit(i);                       \
  }
EMIT_R(com, Com) EMIT_R(neg, Neg) EMIT_R(inc, Inc) EMIT_R(dec, Dec)
EMIT_R(lsr, Lsr) EMIT_R(ror, Ror) EMIT_R(asr, Asr) EMIT_R(swap, Swap)
EMIT_R(ld_x, LdX) EMIT_R(ld_x_inc, LdXInc) EMIT_R(ld_x_dec, LdXDec)
EMIT_R(ld_y_inc, LdYInc) EMIT_R(ld_y_dec, LdYDec)
EMIT_R(ld_z_inc, LdZInc) EMIT_R(ld_z_dec, LdZDec)
EMIT_R(st_x, StX) EMIT_R(st_x_inc, StXInc) EMIT_R(st_x_dec, StXDec)
EMIT_R(st_y_inc, StYInc) EMIT_R(st_y_dec, StYDec)
EMIT_R(st_z_inc, StZInc) EMIT_R(st_z_dec, StZDec)
EMIT_R(push, Push) EMIT_R(pop, Pop) EMIT_R(lpm, Lpm) EMIT_R(lpm_inc, LpmInc)
#undef EMIT_R

void Assembler::ldd_y(Reg d, std::uint8_t q) {
  Instr i = mk(Mnemonic::LddY);
  i.d = d.n;
  i.q = q;
  emit(i);
}
void Assembler::ldd_z(Reg d, std::uint8_t q) {
  Instr i = mk(Mnemonic::LddZ);
  i.d = d.n;
  i.q = q;
  emit(i);
}
void Assembler::std_y(Reg r, std::uint8_t q) {
  Instr i = mk(Mnemonic::StdY);
  i.d = r.n;
  i.q = q;
  emit(i);
}
void Assembler::std_z(Reg r, std::uint8_t q) {
  Instr i = mk(Mnemonic::StdZ);
  i.d = r.n;
  i.q = q;
  emit(i);
}
void Assembler::lds(Reg d, std::uint16_t addr) {
  Instr i = mk(Mnemonic::Lds);
  i.d = d.n;
  i.k32 = addr;
  emit(i);
}
void Assembler::sts(std::uint16_t addr, Reg r) {
  Instr i = mk(Mnemonic::Sts);
  i.d = r.n;
  i.k32 = addr;
  emit(i);
}
void Assembler::in(Reg d, std::uint8_t port) {
  Instr i = mk(Mnemonic::In);
  i.d = d.n;
  i.a = port;
  emit(i);
}
void Assembler::out(std::uint8_t port, Reg r) {
  Instr i = mk(Mnemonic::Out);
  i.d = r.n;
  i.a = port;
  emit(i);
}

void Assembler::sbi(std::uint8_t port, std::uint8_t bit) {
  Instr i = mk(Mnemonic::Sbi);
  i.a = port;
  i.b = bit;
  emit(i);
}
void Assembler::cbi(std::uint8_t port, std::uint8_t bit) {
  Instr i = mk(Mnemonic::Cbi);
  i.a = port;
  i.b = bit;
  emit(i);
}
void Assembler::sbic(std::uint8_t port, std::uint8_t bit) {
  Instr i = mk(Mnemonic::Sbic);
  i.a = port;
  i.b = bit;
  emit(i);
}
void Assembler::sbis(std::uint8_t port, std::uint8_t bit) {
  Instr i = mk(Mnemonic::Sbis);
  i.a = port;
  i.b = bit;
  emit(i);
}
void Assembler::sbrc(Reg r, std::uint8_t bit) {
  Instr i = mk(Mnemonic::Sbrc);
  i.d = r.n;
  i.b = bit;
  emit(i);
}
void Assembler::sbrs(Reg r, std::uint8_t bit) {
  Instr i = mk(Mnemonic::Sbrs);
  i.d = r.n;
  i.b = bit;
  emit(i);
}
void Assembler::bst(Reg d, std::uint8_t bit) {
  Instr i = mk(Mnemonic::Bst);
  i.d = d.n;
  i.b = bit;
  emit(i);
}
void Assembler::bld(Reg d, std::uint8_t bit) {
  Instr i = mk(Mnemonic::Bld);
  i.d = d.n;
  i.b = bit;
  emit(i);
}
void Assembler::sec() {
  Instr i = mk(Mnemonic::Bset);
  i.b = 0;
  emit(i);
}
void Assembler::clc() {
  Instr i = mk(Mnemonic::Bclr);
  i.b = 0;
  emit(i);
}
void Assembler::sei() {
  Instr i = mk(Mnemonic::Bset);
  i.b = 7;
  emit(i);
}
void Assembler::cli() {
  Instr i = mk(Mnemonic::Bclr);
  i.b = 7;
  emit(i);
}

void Assembler::ldi16(Reg lo, std::uint16_t value) {
  ldi(lo, static_cast<std::uint8_t>(value & 0xff));
  ldi(Reg(static_cast<std::uint8_t>(lo.n + 1)), static_cast<std::uint8_t>(value >> 8));
}

void Assembler::ldi_code_ptr(Reg lo, Label target) {
  ldi_lo8w(lo, target);
  ldi_hi8w(Reg(static_cast<std::uint8_t>(lo.n + 1)), target);
}

void Assembler::ldi_lo8w(Reg d, Label target) {
  fixups_.push_back({words_.size(), FixKind::ImmLoW, target.id_});
  ldi(d, 0);
}

void Assembler::ldi_hi8w(Reg d, Label target) {
  fixups_.push_back({words_.size(), FixKind::ImmHiW, target.id_});
  ldi(d, 0);
}

// --- control flow --------------------------------------------------------------

void Assembler::emit_rel(Mnemonic m, Label target, FixKind kind) {
  fixups_.push_back({words_.size(), kind, target.id_});
  Instr i = mk(m);
  i.k = 0;
  emit(i);
}

void Assembler::rjmp(Label t) { emit_rel(Mnemonic::Rjmp, t, FixKind::Rel12); }
void Assembler::rcall(Label t) { emit_rel(Mnemonic::Rcall, t, FixKind::Rel12); }

void Assembler::brbs(std::uint8_t flag_bit, Label t) {
  fixups_.push_back({words_.size(), FixKind::Rel7, t.id_});
  Instr i = mk(Mnemonic::Brbs);
  i.b = flag_bit;
  emit(i);
}
void Assembler::brbc(std::uint8_t flag_bit, Label t) {
  fixups_.push_back({words_.size(), FixKind::Rel7, t.id_});
  Instr i = mk(Mnemonic::Brbc);
  i.b = flag_bit;
  emit(i);
}

void Assembler::jmp(Label t) {
  fixups_.push_back({words_.size(), FixKind::Abs22, t.id_});
  Instr i = mk(Mnemonic::Jmp);
  emit(i);
}
void Assembler::call(Label t) {
  fixups_.push_back({words_.size(), FixKind::Abs22, t.id_});
  Instr i = mk(Mnemonic::Call);
  emit(i);
}
void Assembler::jmp_abs(std::uint32_t waddr) {
  Instr i = mk(Mnemonic::Jmp);
  i.k32 = waddr;
  emit(i);
}
void Assembler::call_abs(std::uint32_t waddr) {
  Instr i = mk(Mnemonic::Call);
  i.k32 = waddr;
  emit(i);
}
void Assembler::rjmp_abs(std::uint32_t waddr) {
  const std::int64_t off = static_cast<std::int64_t>(waddr) -
                           (static_cast<std::int64_t>(here()) + 1);
  if (off < -2048 || off > 2047) throw std::runtime_error("asm: rjmp_abs out of range");
  Instr i = mk(Mnemonic::Rjmp);
  i.k = static_cast<std::int16_t>(off);
  emit(i);
}

void Assembler::ijmp() { emit(mk(Mnemonic::Ijmp)); }
void Assembler::icall() { emit(mk(Mnemonic::Icall)); }
void Assembler::ret() { emit(mk(Mnemonic::Ret)); }
void Assembler::reti() { emit(mk(Mnemonic::Reti)); }
void Assembler::nop() { emit(mk(Mnemonic::Nop)); }
void Assembler::sleep() { emit(mk(Mnemonic::Sleep)); }
void Assembler::brk() { emit(mk(Mnemonic::Break)); }
void Assembler::wdr() { emit(mk(Mnemonic::Wdr)); }
void Assembler::spm() { emit(mk(Mnemonic::Spm)); }

// --- linking --------------------------------------------------------------------

std::uint32_t Assembler::label_value(int id) const {
  if (id < 0 || id >= static_cast<int>(label_addr_.size()))
    throw std::runtime_error("asm: fixup references invalid label");
  const std::int64_t v = label_addr_[static_cast<std::size_t>(id)];
  if (v < 0)
    throw std::runtime_error("asm: unbound label: " + label_name_[static_cast<std::size_t>(id)]);
  return static_cast<std::uint32_t>(v);
}

Program Assembler::assemble() {
  for (const Fixup& f : fixups_) {
    const std::uint32_t target = label_value(f.label);
    const std::uint32_t site = origin_ + static_cast<std::uint32_t>(f.word_index);
    switch (f.kind) {
      case FixKind::Rel12: {
        const std::int64_t off = static_cast<std::int64_t>(target) - (site + 1);
        if (off < -2048 || off > 2047) throw std::runtime_error("asm: rel12 out of range");
        words_[f.word_index] = static_cast<std::uint16_t>(
            (words_[f.word_index] & 0xf000) | (static_cast<std::uint16_t>(off) & 0x0fff));
        break;
      }
      case FixKind::Rel7: {
        const std::int64_t off = static_cast<std::int64_t>(target) - (site + 1);
        if (off < -64 || off > 63) throw std::runtime_error("asm: branch out of range");
        words_[f.word_index] = static_cast<std::uint16_t>(
            (words_[f.word_index] & 0xfc07) | ((static_cast<std::uint16_t>(off) & 0x7f) << 3));
        break;
      }
      case FixKind::Abs22: {
        const std::uint32_t hi = target >> 16;
        words_[f.word_index] = static_cast<std::uint16_t>(
            (words_[f.word_index] & 0xfe0e) | ((hi & 0x3e) << 3) | (hi & 0x01));
        words_[f.word_index + 1] = static_cast<std::uint16_t>(target & 0xffff);
        break;
      }
      case FixKind::ImmLoW:
      case FixKind::ImmHiW: {
        const std::uint8_t byte = f.kind == FixKind::ImmLoW
                                      ? static_cast<std::uint8_t>(target & 0xff)
                                      : static_cast<std::uint8_t>((target >> 8) & 0xff);
        words_[f.word_index] = static_cast<std::uint16_t>(
            (words_[f.word_index] & 0xf0f0) | ((byte & 0xf0) << 4) | (byte & 0x0f));
        break;
      }
    }
  }
  Program p;
  p.origin = origin_;
  p.words = words_;
  p.symbols = symbols_;
  return p;
}

}  // namespace harbor::assembler
