#include "asm/text.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "asm/builder.h"

namespace harbor::assembler {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

/// One source line split into mnemonic + comma-separated operand strings.
struct Line {
  std::string mnemonic;
  std::vector<std::string> operands;
};

class TextAssembler {
 public:
  explicit TextAssembler(std::uint32_t origin) : asm_(origin) {}

  Program run(std::string_view source) {
    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      const std::size_t eol = source.find('\n', pos);
      std::string_view raw = source.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                                              : eol - pos);
      pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
      ++line_no;
      line_ = line_no;
      process_line(raw);
    }
    try {
      return asm_.assemble();
    } catch (const std::runtime_error& e) {
      throw AsmError(line_, e.what());
    }
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const { throw AsmError(line_, msg); }

  Label label_of(const std::string& name) {
    const auto it = labels_.find(name);
    if (it != labels_.end()) return it->second;
    Label l = asm_.make_label(name);
    labels_.emplace(name, l);
    return l;
  }

  void process_line(std::string_view raw) {
    // Strip comment (';' outside of any quoting; we have no string literals
    // except in .db, where ';' inside quotes must survive).
    std::string text;
    bool in_quote = false;
    for (const char c : raw) {
      if (c == '"') in_quote = !in_quote;
      if (c == ';' && !in_quote) break;
      text.push_back(c);
    }
    std::string_view s = trim(text);
    if (s.empty()) return;

    // Leading labels (possibly several on one line).
    while (true) {
      const std::size_t colon = s.find(':');
      if (colon == std::string_view::npos) break;
      const std::string_view head = trim(s.substr(0, colon));
      if (head.empty() || !is_identifier(head)) break;
      bind_label(std::string(head));
      s = trim(s.substr(colon + 1));
      if (s.empty()) return;
    }

    const Line line = split_line(s);
    try {
      if (!line.mnemonic.empty() && line.mnemonic[0] == '.') {
        directive(line);
      } else {
        instruction(line);
      }
    } catch (const AsmError&) {
      throw;
    } catch (const std::exception& e) {
      fail(e.what());  // encoder range violations etc.
    }
  }

  static bool is_identifier(std::string_view s) {
    if (s.empty()) return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') return false;
    return std::all_of(s.begin(), s.end(), [](unsigned char c) {
      return std::isalnum(c) || c == '_';
    });
  }

  void bind_label(const std::string& name) {
    Label l = label_of(name);
    try {
      asm_.bind(l);
    } catch (const std::runtime_error& e) {
      fail(e.what());
    }
  }

  Line split_line(std::string_view s) const {
    Line out;
    std::size_t i = 0;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    out.mnemonic = lower(std::string(s.substr(0, i)));
    std::string_view rest = trim(s.substr(i));
    if (rest.empty()) return out;
    std::string cur;
    bool in_quote = false;
    for (const char c : rest) {
      if (c == '"') in_quote = !in_quote;
      if (c == ',' && !in_quote) {
        out.operands.push_back(std::string(trim(cur)));
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    out.operands.push_back(std::string(trim(cur)));
    return out;
  }

  // --- expression evaluation ---------------------------------------------

  /// Constant-expression value, or a label reference wrapped in lo8/hi8.
  struct Value {
    std::int64_t num = 0;
    std::optional<Label> lo8_label;
    std::optional<Label> hi8_label;
  };

  std::int64_t parse_number(std::string_view t) const {
    const std::string str(t);
    try {
      std::size_t used = 0;
      std::int64_t v;
      if (str.size() > 2 && str[0] == '0' && (str[1] == 'x' || str[1] == 'X')) {
        v = std::stoll(str.substr(2), &used, 16);
        used += 2;
      } else if (str.size() > 2 && str[0] == '0' && (str[1] == 'b' || str[1] == 'B')) {
        v = std::stoll(str.substr(2), &used, 2);
        used += 2;
      } else {
        v = std::stoll(str, &used, 10);
      }
      if (used != str.size()) fail("bad number: " + str);
      return v;
    } catch (const std::exception&) {
      fail("bad number: " + str);
    }
  }

  /// Evaluate a constant expression (numbers, .equ symbols, + and -).
  std::int64_t const_expr(std::string_view e) const {
    std::int64_t acc = 0;
    int sign = +1;
    std::size_t i = 0;
    auto term = [&]() -> std::int64_t {
      std::size_t start = i;
      while (i < e.size() && e[i] != '+' && e[i] != '-') ++i;
      const std::string_view t = trim(e.substr(start, i - start));
      if (t.empty()) fail("empty term in expression");
      if (std::isdigit(static_cast<unsigned char>(t[0]))) return parse_number(t);
      const auto it = equs_.find(lower(std::string(t)));
      if (it == equs_.end()) fail("undefined symbol: " + std::string(t));
      return it->second;
    };
    acc = term();
    while (i < e.size()) {
      sign = e[i] == '-' ? -1 : +1;
      ++i;
      acc += sign * term();
    }
    return acc;
  }

  /// Evaluate an immediate operand, allowing lo8(label)/hi8(label).
  Value imm_operand(const std::string& op) {
    const std::string l = lower(op);
    auto func = [&](const char* name) -> std::optional<std::string> {
      const std::string prefix = std::string(name) + "(";
      if (l.rfind(prefix, 0) == 0 && l.back() == ')')
        return std::string(trim(std::string_view(op).substr(prefix.size(),
                                                            op.size() - prefix.size() - 1)));
      return std::nullopt;
    };
    Value v;
    if (auto inner = func("lo8")) {
      if (is_identifier(*inner) && !equs_.count(lower(*inner))) {
        v.lo8_label = label_of(*inner);
        return v;
      }
      v.num = const_expr(*inner) & 0xff;
      return v;
    }
    if (auto inner = func("hi8")) {
      if (is_identifier(*inner) && !equs_.count(lower(*inner))) {
        v.hi8_label = label_of(*inner);
        return v;
      }
      v.num = (const_expr(*inner) >> 8) & 0xff;
      return v;
    }
    v.num = const_expr(op);
    return v;
  }

  Reg reg_operand(const std::string& op) const {
    const std::string l = lower(op);
    if (l.size() >= 2 && l[0] == 'r') {
      int n = 0;
      for (std::size_t i = 1; i < l.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(l[i]))) fail("bad register: " + op);
        n = n * 10 + (l[i] - '0');
      }
      if (n > 31) fail("bad register: " + op);
      return Reg(static_cast<std::uint8_t>(n));
    }
    fail("expected register, got: " + op);
  }

  std::uint8_t u8_operand(const std::string& op) const {
    const std::int64_t v = const_expr(op);
    if (v < -128 || v > 255) fail("immediate out of byte range: " + op);
    return static_cast<std::uint8_t>(v & 0xff);
  }

  // --- directives ----------------------------------------------------------

  void directive(const Line& line) {
    if (line.mnemonic == ".org") {
      if (line.operands.size() != 1) fail(".org takes one operand");
      try {
        asm_.pad_to(static_cast<std::uint32_t>(const_expr(line.operands[0])));
      } catch (const std::runtime_error& e) {
        fail(e.what());
      }
    } else if (line.mnemonic == ".equ") {
      // .equ NAME = value
      std::string joined;
      for (std::size_t i = 0; i < line.operands.size(); ++i)
        joined += (i ? "," : "") + line.operands[i];
      const std::size_t eq = joined.find('=');
      if (eq == std::string::npos) fail(".equ requires NAME = value");
      const std::string name = lower(std::string(trim(std::string_view(joined).substr(0, eq))));
      if (!is_identifier(name)) fail(".equ: bad name");
      equs_[name] = const_expr(trim(std::string_view(joined).substr(eq + 1)));
    } else if (line.mnemonic == ".dw") {
      for (const auto& op : line.operands)
        asm_.dw(static_cast<std::uint16_t>(const_expr(op) & 0xffff));
    } else if (line.mnemonic == ".db") {
      std::vector<std::uint8_t> bytes;
      for (const auto& op : line.operands) {
        if (op.size() >= 2 && op.front() == '"' && op.back() == '"') {
          for (std::size_t i = 1; i + 1 < op.size(); ++i)
            bytes.push_back(static_cast<std::uint8_t>(op[i]));
        } else {
          bytes.push_back(u8_operand(op));
        }
      }
      if (bytes.size() % 2) bytes.push_back(0);
      for (std::size_t i = 0; i < bytes.size(); i += 2)
        asm_.dw(static_cast<std::uint16_t>(bytes[i] | (bytes[i + 1] << 8)));
    } else {
      fail("unknown directive: " + line.mnemonic);
    }
  }

  // --- instructions ---------------------------------------------------------

  void need_operands(const Line& line, std::size_t n) const {
    if (line.operands.size() != n)
      fail(line.mnemonic + " expects " + std::to_string(n) + " operand(s)");
  }

  void instruction(const Line& line);

  Assembler asm_;
  std::map<std::string, Label> labels_;
  std::map<std::string, std::int64_t> equs_;
  int line_ = 0;
};

void TextAssembler::instruction(const Line& line) {
  const std::string& m = line.mnemonic;
  auto R = [&](std::size_t i) { return reg_operand(line.operands[i]); };
  auto U8 = [&](std::size_t i) { return u8_operand(line.operands[i]); };
  auto L = [&](std::size_t i) -> Label {
    const std::string& t = line.operands[i];
    if (!is_identifier(t)) fail("expected label, got: " + t);
    return label_of(t);
  };

  // Two-register ALU ops.
  static const std::map<std::string, void (Assembler::*)(Reg, Reg)> rr = {
      {"add", &Assembler::add}, {"adc", &Assembler::adc}, {"sub", &Assembler::sub},
      {"sbc", &Assembler::sbc}, {"and", &Assembler::and_}, {"or", &Assembler::or_},
      {"eor", &Assembler::eor}, {"mov", &Assembler::mov}, {"movw", &Assembler::movw},
      {"cp", &Assembler::cp}, {"cpc", &Assembler::cpc}, {"cpse", &Assembler::cpse},
      {"mul", &Assembler::mul},
  };
  if (const auto it = rr.find(m); it != rr.end()) {
    need_operands(line, 2);
    (asm_.*it->second)(R(0), R(1));
    return;
  }

  // Register + 8-bit immediate ops (ldi handles lo8/hi8 of labels).
  static const std::map<std::string, void (Assembler::*)(Reg, std::uint8_t)> ri = {
      {"subi", &Assembler::subi}, {"sbci", &Assembler::sbci}, {"andi", &Assembler::andi},
      {"ori", &Assembler::ori}, {"cpi", &Assembler::cpi},
      {"adiw", &Assembler::adiw}, {"sbiw", &Assembler::sbiw},
  };
  if (const auto it = ri.find(m); it != ri.end()) {
    need_operands(line, 2);
    (asm_.*it->second)(R(0), U8(1));
    return;
  }
  if (m == "ldi") {
    need_operands(line, 2);
    const Value v = imm_operand(line.operands[1]);
    if (v.lo8_label) {
      asm_.ldi_lo8w(R(0), *v.lo8_label);
    } else if (v.hi8_label) {
      asm_.ldi_hi8w(R(0), *v.hi8_label);
    } else {
      if (v.num < -128 || v.num > 255) fail("ldi immediate out of range");
      asm_.ldi(R(0), static_cast<std::uint8_t>(v.num & 0xff));
    }
    return;
  }

  // Single-register ops.
  static const std::map<std::string, void (Assembler::*)(Reg)> r1 = {
      {"com", &Assembler::com}, {"neg", &Assembler::neg}, {"inc", &Assembler::inc},
      {"dec", &Assembler::dec}, {"lsr", &Assembler::lsr}, {"ror", &Assembler::ror},
      {"asr", &Assembler::asr}, {"swap", &Assembler::swap}, {"push", &Assembler::push},
      {"pop", &Assembler::pop}, {"clr", &Assembler::clr}, {"lsl", &Assembler::lsl},
      {"rol", &Assembler::rol}, {"tst", &Assembler::tst},
  };
  if (const auto it = r1.find(m); it != r1.end()) {
    need_operands(line, 1);
    (asm_.*it->second)(R(0));
    return;
  }

  if (m == "ld" || m == "st") {
    need_operands(line, 2);
    const bool load = m == "ld";
    const std::string reg_op = load ? line.operands[0] : line.operands[1];
    const std::string ptr = lower(load ? line.operands[1] : line.operands[0]);
    const Reg r = reg_operand(reg_op);
    if (ptr == "x") { load ? asm_.ld_x(r) : asm_.st_x(r); return; }
    if (ptr == "x+") { load ? asm_.ld_x_inc(r) : asm_.st_x_inc(r); return; }
    if (ptr == "-x") { load ? asm_.ld_x_dec(r) : asm_.st_x_dec(r); return; }
    if (ptr == "y") { load ? asm_.ld_y(r) : asm_.st_y(r); return; }
    if (ptr == "y+") { load ? asm_.ld_y_inc(r) : asm_.st_y_inc(r); return; }
    if (ptr == "-y") { load ? asm_.ld_y_dec(r) : asm_.st_y_dec(r); return; }
    if (ptr == "z") { load ? asm_.ld_z(r) : asm_.st_z(r); return; }
    if (ptr == "z+") { load ? asm_.ld_z_inc(r) : asm_.st_z_inc(r); return; }
    if (ptr == "-z") { load ? asm_.ld_z_dec(r) : asm_.st_z_dec(r); return; }
    fail("bad pointer operand: " + ptr);
  }
  if (m == "ldd" || m == "std") {
    need_operands(line, 2);
    const bool load = m == "ldd";
    const std::string reg_op = load ? line.operands[0] : line.operands[1];
    const std::string ptr = lower(load ? line.operands[1] : line.operands[0]);
    const Reg r = reg_operand(reg_op);
    if (ptr.size() < 3 || (ptr[0] != 'y' && ptr[0] != 'z') || ptr[1] != '+')
      fail("bad displaced operand: " + ptr);
    const std::int64_t q = const_expr(std::string_view(ptr).substr(2));
    if (q < 0 || q > 63) fail("displacement out of range");
    const std::uint8_t q8 = static_cast<std::uint8_t>(q);
    if (ptr[0] == 'y') { load ? asm_.ldd_y(r, q8) : asm_.std_y(r, q8); return; }
    load ? asm_.ldd_z(r, q8) : asm_.std_z(r, q8);
    return;
  }
  if (m == "lds") {
    need_operands(line, 2);
    asm_.lds(R(0), static_cast<std::uint16_t>(const_expr(line.operands[1])));
    return;
  }
  if (m == "sts") {
    need_operands(line, 2);
    asm_.sts(static_cast<std::uint16_t>(const_expr(line.operands[0])), R(1));
    return;
  }
  if (m == "lpm") {
    if (line.operands.empty()) fail("lpm requires operands (use: lpm rd, Z or Z+)");
    need_operands(line, 2);
    const std::string ptr = lower(line.operands[1]);
    if (ptr == "z") { asm_.lpm(R(0)); return; }
    if (ptr == "z+") { asm_.lpm_inc(R(0)); return; }
    fail("bad lpm operand");
  }
  if (m == "in") {
    need_operands(line, 2);
    asm_.in(R(0), U8(1));
    return;
  }
  if (m == "out") {
    need_operands(line, 2);
    asm_.out(U8(0), R(1));
    return;
  }

  // IO / register bit ops.
  if (m == "sbi" || m == "cbi" || m == "sbic" || m == "sbis") {
    need_operands(line, 2);
    const std::uint8_t a = U8(0), b = U8(1);
    if (m == "sbi") asm_.sbi(a, b);
    else if (m == "cbi") asm_.cbi(a, b);
    else if (m == "sbic") asm_.sbic(a, b);
    else asm_.sbis(a, b);
    return;
  }
  if (m == "sbrc" || m == "sbrs" || m == "bst" || m == "bld") {
    need_operands(line, 2);
    if (m == "sbrc") asm_.sbrc(R(0), U8(1));
    else if (m == "sbrs") asm_.sbrs(R(0), U8(1));
    else if (m == "bst") asm_.bst(R(0), U8(1));
    else asm_.bld(R(0), U8(1));
    return;
  }

  // Control flow.
  static const std::map<std::string, void (Assembler::*)(Label)> branches = {
      {"rjmp", &Assembler::rjmp}, {"rcall", &Assembler::rcall},
      {"jmp", &Assembler::jmp}, {"call", &Assembler::call},
      {"breq", &Assembler::breq}, {"brne", &Assembler::brne},
      {"brcs", &Assembler::brcs}, {"brcc", &Assembler::brcc},
      {"brlo", &Assembler::brlo}, {"brsh", &Assembler::brsh},
      {"brmi", &Assembler::brmi}, {"brpl", &Assembler::brpl},
      {"brge", &Assembler::brge}, {"brlt", &Assembler::brlt},
  };
  if (const auto it = branches.find(m); it != branches.end()) {
    need_operands(line, 1);
    // jmp/call also accept absolute numeric targets.
    const std::string& t = line.operands[0];
    if (!is_identifier(t) && (m == "jmp" || m == "call")) {
      const std::int64_t addr = const_expr(t);
      if (m == "jmp") asm_.jmp_abs(static_cast<std::uint32_t>(addr));
      else asm_.call_abs(static_cast<std::uint32_t>(addr));
      return;
    }
    (asm_.*it->second)(L(0));
    return;
  }

  static const std::map<std::string, void (Assembler::*)()> nullary = {
      {"ijmp", &Assembler::ijmp}, {"icall", &Assembler::icall}, {"ret", &Assembler::ret},
      {"reti", &Assembler::reti}, {"nop", &Assembler::nop}, {"sleep", &Assembler::sleep},
      {"break", &Assembler::brk}, {"wdr", &Assembler::wdr}, {"spm", &Assembler::spm},
      {"sec", &Assembler::sec}, {"clc", &Assembler::clc}, {"sei", &Assembler::sei},
      {"cli", &Assembler::cli},
  };
  if (const auto it = nullary.find(m); it != nullary.end()) {
    need_operands(line, 0);
    (asm_.*it->second)();
    return;
  }

  fail("unknown mnemonic: " + m);
}

}  // namespace

Program assemble_text(std::string_view source, std::uint32_t origin_words) {
  TextAssembler t(origin_words);
  return t.run(source);
}

}  // namespace harbor::assembler
