#pragma once
// Text front end for the assembler: standard AVR syntax, labels, .org /
// .equ / .dw / .db directives, lo8()/hi8() operators on labels and symbols.
//
//   ; blink a counter
//   .equ DBG = 0x18
//   start:
//       ldi r16, 0
//   loop:
//       inc r16
//       out DBG, r16
//       rjmp loop

#include <stdexcept>
#include <string>
#include <string_view>

#include "asm/program.h"

namespace harbor::assembler {

/// Assemble AVR source text. Throws AsmError (derived from
/// std::runtime_error, carries the 1-based line number) on syntax errors,
/// undefined symbols or range violations.
Program assemble_text(std::string_view source, std::uint32_t origin_words = 0);

class AsmError : public std::runtime_error {
 public:
  AsmError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

}  // namespace harbor::assembler
