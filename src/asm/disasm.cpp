#include "asm/disasm.h"

#include <cstdio>

#include "avr/decoder.h"

namespace harbor::assembler {

using avr::Instr;
using avr::Mnemonic;

namespace {

std::string fmt(const char* f, auto... args) {
  char buf[96];
  std::snprintf(buf, sizeof buf, f, args...);
  return buf;
}

const char* ptr_operand(Mnemonic m) {
  switch (m) {
    case Mnemonic::LdX: case Mnemonic::StX: return "X";
    case Mnemonic::LdXInc: case Mnemonic::StXInc: return "X+";
    case Mnemonic::LdXDec: case Mnemonic::StXDec: return "-X";
    case Mnemonic::LdYInc: case Mnemonic::StYInc: return "Y+";
    case Mnemonic::LdYDec: case Mnemonic::StYDec: return "-Y";
    case Mnemonic::LdZInc: case Mnemonic::StZInc: return "Z+";
    case Mnemonic::LdZDec: case Mnemonic::StZDec: return "-Z";
    default: return "?";
  }
}

}  // namespace

std::string format_instr(const Instr& in, std::uint32_t pc) {
  using M = Mnemonic;
  const std::string name(avr::mnemonic_name(in.op));
  switch (in.op) {
    case M::Add: case M::Adc: case M::Sub: case M::Sbc: case M::And: case M::Or:
    case M::Eor: case M::Mov: case M::Cp: case M::Cpc: case M::Cpse: case M::Mul:
    case M::Muls: case M::Mulsu: case M::Fmul: case M::Fmuls: case M::Fmulsu:
    case M::Movw:
      return fmt("%s r%d, r%d", name.c_str(), in.d, in.r);
    case M::Subi: case M::Sbci: case M::Andi: case M::Ori: case M::Cpi: case M::Ldi:
      return fmt("%s r%d, 0x%02x", name.c_str(), in.d, in.imm);
    case M::Adiw: case M::Sbiw:
      return fmt("%s r%d, %d", name.c_str(), in.d, in.imm);
    case M::Com: case M::Neg: case M::Inc: case M::Dec: case M::Swap: case M::Lsr:
    case M::Ror: case M::Asr: case M::Push: case M::Pop: case M::Lpm: case M::Elpm:
      return fmt("%s r%d", name.c_str(), in.d);
    case M::LpmInc: case M::ElpmInc:
      return fmt("%s r%d, Z+", name.c_str(), in.d);
    case M::LpmR0: case M::ElpmR0: case M::Spm: case M::Nop: case M::Sleep:
    case M::Wdr: case M::Break: case M::Ret: case M::Reti: case M::Ijmp:
    case M::Icall:
      return name;
    case M::LdX: case M::LdXInc: case M::LdXDec: case M::LdYInc: case M::LdYDec:
    case M::LdZInc: case M::LdZDec:
      return fmt("%s r%d, %s", name.c_str(), in.d, ptr_operand(in.op));
    case M::StX: case M::StXInc: case M::StXDec: case M::StYInc: case M::StYDec:
    case M::StZInc: case M::StZDec:
      return fmt("%s %s, r%d", name.c_str(), ptr_operand(in.op), in.d);
    case M::LddY: return fmt("ldd r%d, Y+%d", in.d, in.q);
    case M::LddZ: return fmt("ldd r%d, Z+%d", in.d, in.q);
    case M::StdY: return fmt("std Y+%d, r%d", in.q, in.d);
    case M::StdZ: return fmt("std Z+%d, r%d", in.q, in.d);
    case M::Lds: return fmt("lds r%d, 0x%04x", in.d, in.k32);
    case M::Sts: return fmt("sts 0x%04x, r%d", in.k32, in.d);
    case M::In: return fmt("in r%d, 0x%02x", in.d, in.a);
    case M::Out: return fmt("out 0x%02x, r%d", in.a, in.d);
    case M::Sbi: case M::Cbi: case M::Sbic: case M::Sbis:
      return fmt("%s 0x%02x, %d", name.c_str(), in.a, in.b);
    case M::Sbrc: case M::Sbrs:
      return fmt("%s r%d, %d", name.c_str(), in.d, in.b);
    case M::Bst: case M::Bld:
      return fmt("%s r%d, %d", name.c_str(), in.d, in.b);
    case M::Bset: case M::Bclr:
      return fmt("%s %d", name.c_str(), in.b);
    case M::Rjmp: case M::Rcall:
      return fmt("%s 0x%05x", name.c_str(),
                 static_cast<unsigned>(pc + 1 + static_cast<std::int32_t>(in.k)));
    case M::Brbs: case M::Brbc:
      return fmt("%s %d, 0x%05x", name.c_str(), in.b,
                 static_cast<unsigned>(pc + 1 + static_cast<std::int32_t>(in.k)));
    case M::Jmp: case M::Call:
      return fmt("%s 0x%05x", name.c_str(), in.k32);
    case M::Ser:
      return fmt("ser r%d", in.d);
    case M::Invalid:
      break;
  }
  return "<invalid>";
}

std::string disassemble_range(const avr::Flash& flash, std::uint32_t pc, int count) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    const Instr in = avr::decode(flash.read_word(pc), flash.read_word(pc + 1));
    out += fmt("%05x:  %s\n", static_cast<unsigned>(pc), format_instr(in, pc).c_str());
    pc += static_cast<std::uint32_t>(in.op == Mnemonic::Invalid ? 1 : in.words());
  }
  return out;
}

}  // namespace harbor::assembler
