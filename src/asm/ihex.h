#pragma once
// Intel-HEX writer/loader for assembled images (the interchange format AVR
// toolchains use; lets images produced here be inspected with standard
// tools, and external images be loaded into the simulator).

#include <string>
#include <string_view>

#include "asm/program.h"

namespace harbor::assembler {

/// Render a program as Intel-HEX records (:LLAAAATT<data>CC, type 00 data
/// records with 16 bytes each, terminated by a type-01 EOF record).
/// Addresses are byte addresses (word address * 2).
std::string to_intel_hex(const Program& p);

/// Parse Intel-HEX text back into a Program. The origin is the lowest byte
/// address seen (must be even); gaps are filled with 0xFFFF (erased flash).
/// Throws std::runtime_error on malformed records or checksum mismatch.
Program from_intel_hex(std::string_view text);

}  // namespace harbor::assembler
