#pragma once
// Assembled program image: flash words at an origin plus a symbol table.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace harbor::assembler {

/// Result of assembling one translation unit. `origin` and symbol values
/// are flash *word* addresses.
struct Program {
  std::uint32_t origin = 0;
  std::vector<std::uint16_t> words;
  std::map<std::string, std::uint32_t> symbols;

  [[nodiscard]] std::optional<std::uint32_t> symbol(const std::string& name) const {
    const auto it = symbols.find(name);
    if (it == symbols.end()) return std::nullopt;
    return it->second;
  }

  /// End of the image (word address one past the last word).
  [[nodiscard]] std::uint32_t end() const {
    return origin + static_cast<std::uint32_t>(words.size());
  }

  [[nodiscard]] std::size_t size_bytes() const { return words.size() * 2; }
};

}  // namespace harbor::assembler
