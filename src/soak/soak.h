#pragma once
// Long-horizon soak harness (DESIGN.md §14): compresses days of simulated
// uptime into host seconds by interleaving bursts of real guest activity
// with fast-forwarded quiescent stretches.
//
// Epoch model: one epoch = one simulated hour. Within an epoch the
// scheduler drives the full stack — cross-domain call traffic through the
// Surge/Tree modules, an OTA install/recover cycle against the journaled
// module store (with seeded power cuts), a watchdog → quarantine → revive
// storm against a deliberately crashing module — then fast-forwards the
// simulated clock to the epoch boundary. The guest executes a few hundred
// thousand real cycles per simulated hour; the remaining ~14.4 billion
// idle cycles are accounted, not executed.
//
// At the checkpoint cadence the invariant-monitor registry (monitors.h)
// re-verifies the device from primary state; one soak-report-v1 JSONL
// health record streams out per epoch either way.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/harbor.h"
#include "soak/monitors.h"
#include "trace/export.h"

namespace harbor::soak {

/// Scenario script shaping each epoch's activity (DESIGN.md §15).
enum class SoakScenario : std::uint8_t {
  Steady,      ///< the classic mix: steady traffic, OTA every epoch, odd-epoch storms
  Bursty,      ///< alternating heavy phases (double OTA, 4-8 bursts) and near-idle ones
  PowerStorm,  ///< correlated brown-outs: every install torn across 3-epoch windows
  Aging,       ///< reduced-endurance flash + leveled multi-slot store driven to end-of-life
};

const char* scenario_name_of(SoakScenario s);

struct SoakConfig {
  ProtectionMode mode = ProtectionMode::Umpu;
  double hours = 24.0;          ///< simulated uptime (1 epoch per hour)
  std::uint64_t seed = 1;       ///< drives power-cut timing and storm cadence
  int checkpoint_every = 4;     ///< run monitors every N epochs (last always runs)
  std::size_t ring_capacity = 4096;  ///< small enough to saturate in-run
  /// Max tolerated per-page erase count; 0 = auto (scaled to the horizon).
  std::uint64_t flash_wear_budget = 0;
  /// Simulated core clock (ATmega103-class: 4 MHz).
  std::uint64_t clock_hz = 4'000'000;
  /// Per-dispatch watchdog budget for the soak system.
  std::uint64_t cycle_budget = 100'000;
  SoakScenario scenario = SoakScenario::Steady;
  /// Nominal per-page erase endurance; 0 = scenario default (Aging: 48,
  /// everything else: unlimited). Lower values accelerate aging.
  std::uint32_t flash_endurance = 0;
  /// Self-test mode: run with wear leveling AND bad-page remapping disabled.
  /// An aging run in this mode must demonstrably fail a monitor (the
  /// wear-spread bound) — proving the monitors can catch the degradation
  /// the mitigations exist to prevent.
  bool weakened = false;
  /// Max tolerated slot-level wear spread; 0 = auto (16).
  std::uint64_t wear_spread_budget = 0;
  /// Divergent futures: after the main horizon, fork this many alternative
  /// continuations from the final soaked state (System::snapshot + kernel
  /// host state + flash copy), each with a different derived seed.
  int forks = 0;
  int fork_epochs = 0;  ///< epochs each fork runs; 0 = auto (2)
};

/// Flash end-of-life facts sampled at the epoch boundary. Spread is NOT
/// monotone (a leveled install can shrink it), so these live beside the
/// counters object rather than inside it — the validator holds every
/// counter to non-decreasing.
struct WearRecord {
  std::uint64_t max = 0;           ///< worst per-page erase count
  std::uint64_t spread = 0;        ///< slot-level wear spread (max - min)
  std::uint64_t spread_budget = 0; ///< the leveling bound the monitor enforces
  std::uint64_t pages_bad = 0;     ///< pages past end-of-life
  std::uint64_t remaps = 0;        ///< cumulative remap events
  std::uint64_t spares_in_use = 0; ///< live remap-table entries
};

/// One per-epoch health record (the JSONL line, structured).
struct EpochRecord {
  int epoch = 0;
  double sim_hours = 0.0;
  bool checkpoint = false;
  /// Monotone counters sampled at the epoch boundary (name -> value).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  WearRecord wear;
  std::vector<MonitorResult> monitors;  ///< empty on non-checkpoint epochs
};

/// One divergent future forked from the final soaked state. Forks are
/// reported here (and via forks_json), never in the main JSONL stream —
/// soak-report-v1 lines are strictly one-per-epoch.
struct ForkRecord {
  int fork = 0;
  std::uint64_t seed = 0;       ///< derived rng seed this future ran under
  int epochs = 0;
  bool monitors_ok = false;
  std::string failure;          ///< first monitor failure, "" when ok
  /// FNV-1a digest over flash contents, wear table and headline stats:
  /// two futures with different seeds must diverge here.
  std::uint64_t digest = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

struct SoakReport {
  bool ok = false;            ///< every monitor passed at every checkpoint (forks included)
  std::string mode_name;
  std::string scenario_name;
  int epochs = 0;
  int checkpoints = 0;
  double sim_hours = 0.0;
  std::uint64_t executed_cycles = 0;   ///< cycles the core actually ran
  std::uint64_t skipped_cycles = 0;    ///< quiescent time fast-forwarded
  std::vector<EpochRecord> records;
  /// Host-side counter tracks spanning the whole run (the event ring drops
  /// early records under saturation; these do not).
  std::vector<trace::CounterTrack> counter_tracks;
  /// Perfetto trace-event JSON of the final ring (epoch/checkpoint instants,
  /// wear counter track) and the flat metrics dump — rendered before the
  /// run's System is torn down, since the tracer dies with it.
  std::string perfetto_trace;
  std::string metrics;
  std::string failure;        ///< first monitor failure, "" when ok
  std::vector<ForkRecord> forks;  ///< divergent futures (empty unless cfg.forks > 0)
};

/// Render one epoch record as a soak-report-v1 JSON object (one line, no
/// trailing newline) — the schema tools/validate_trace.py --soak checks.
std::string epoch_record_json(const SoakReport& report, const EpochRecord& rec);

/// Render the fork records as one JSON object ({"schema":"soak-forks-v1",...}).
std::string forks_json(const SoakReport& report);

/// Run the scenario. When `jsonl` is non-null, each epoch's health record
/// streams to it as it completes (newline-terminated).
SoakReport run_soak(const SoakConfig& cfg, std::ostream* jsonl = nullptr);

}  // namespace harbor::soak
