#pragma once
// Long-horizon soak harness (DESIGN.md §14): compresses days of simulated
// uptime into host seconds by interleaving bursts of real guest activity
// with fast-forwarded quiescent stretches.
//
// Epoch model: one epoch = one simulated hour. Within an epoch the
// scheduler drives the full stack — cross-domain call traffic through the
// Surge/Tree modules, an OTA install/recover cycle against the journaled
// module store (with seeded power cuts), a watchdog → quarantine → revive
// storm against a deliberately crashing module — then fast-forwards the
// simulated clock to the epoch boundary. The guest executes a few hundred
// thousand real cycles per simulated hour; the remaining ~14.4 billion
// idle cycles are accounted, not executed.
//
// At the checkpoint cadence the invariant-monitor registry (monitors.h)
// re-verifies the device from primary state; one soak-report-v1 JSONL
// health record streams out per epoch either way.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/harbor.h"
#include "soak/monitors.h"
#include "trace/export.h"

namespace harbor::soak {

struct SoakConfig {
  ProtectionMode mode = ProtectionMode::Umpu;
  double hours = 24.0;          ///< simulated uptime (1 epoch per hour)
  std::uint64_t seed = 1;       ///< drives power-cut timing and storm cadence
  int checkpoint_every = 4;     ///< run monitors every N epochs (last always runs)
  std::size_t ring_capacity = 4096;  ///< small enough to saturate in-run
  /// Max tolerated per-page erase count; 0 = auto (scaled to the horizon).
  std::uint64_t flash_wear_budget = 0;
  /// Simulated core clock (ATmega103-class: 4 MHz).
  std::uint64_t clock_hz = 4'000'000;
  /// Per-dispatch watchdog budget for the soak system.
  std::uint64_t cycle_budget = 100'000;
};

/// One per-epoch health record (the JSONL line, structured).
struct EpochRecord {
  int epoch = 0;
  double sim_hours = 0.0;
  bool checkpoint = false;
  /// Monotone counters sampled at the epoch boundary (name -> value).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<MonitorResult> monitors;  ///< empty on non-checkpoint epochs
};

struct SoakReport {
  bool ok = false;            ///< every monitor passed at every checkpoint
  std::string mode_name;
  int epochs = 0;
  int checkpoints = 0;
  double sim_hours = 0.0;
  std::uint64_t executed_cycles = 0;   ///< cycles the core actually ran
  std::uint64_t skipped_cycles = 0;    ///< quiescent time fast-forwarded
  std::vector<EpochRecord> records;
  /// Host-side counter tracks spanning the whole run (the event ring drops
  /// early records under saturation; these do not).
  std::vector<trace::CounterTrack> counter_tracks;
  /// Perfetto trace-event JSON of the final ring (epoch/checkpoint instants,
  /// wear counter track) and the flat metrics dump — rendered before the
  /// run's System is torn down, since the tracer dies with it.
  std::string perfetto_trace;
  std::string metrics;
  std::string failure;        ///< first monitor failure, "" when ok
};

/// Render one epoch record as a soak-report-v1 JSON object (one line, no
/// trailing newline) — the schema tools/validate_trace.py --soak checks.
std::string epoch_record_json(const SoakReport& report, const EpochRecord& rec);

/// Run the scenario. When `jsonl` is non-null, each epoch's health record
/// streams to it as it completes (newline-terminated).
SoakReport run_soak(const SoakConfig& cfg, std::ostream* jsonl = nullptr);

}  // namespace harbor::soak
