#pragma once
// Invariant monitors for the long-horizon soak harness (DESIGN.md §14).
//
// A monitor is a named predicate over the *live* system that the soak
// scheduler re-runs at every checkpoint epoch. Each one re-derives its
// verdict from primary state (the guest memory-map table, the flash
// journal, the jump-table words in flash) rather than from the harness's
// own bookkeeping, so a monitor failing means the device state itself
// violates an invariant — not that a counter drifted.
//
// Monitors run in a fixed registration order; their index is the monitor
// id carried by SoakMonitor trace events and by the soak-report-v1 JSONL
// records, so ids are stable across runs of the same binary.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/harbor.h"
#include "inject/oracle.h"
#include "ota/store.h"

namespace harbor::soak {

/// Scenario-side facts the scheduler accumulates for the bound checks
/// (worst dispatch latency, last journal-replay cost, churn counts).
struct SoakStats {
  std::uint64_t max_dispatch_cycles = 0;  ///< worst guest dispatch this run
  std::uint64_t last_recover_ops = 0;     ///< flash ops of the last recover()
  std::uint64_t ota_installs = 0;
  /// Installs the store refused (worn-out slots, failed read-back verify).
  /// An aging scenario tolerates these — the previous committed image keeps
  /// serving — so they are counted, not thrown.
  std::uint64_t install_failures = 0;
  std::uint64_t power_cuts = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t revives = 0;
};

/// Everything a monitor may inspect. `sys` is non-const: some monitors
/// drive the real machinery (a liveness probe allocates through the
/// protected allocator) inside a snapshot/restore bubble.
struct MonitorContext {
  System& sys;
  ota::ModuleStore& store;
  const inject::Oracle& victim_oracle;  ///< no-escape baseline (victim-owned bytes)
  memmap::DomainId victim;
  const SoakStats& stats;
  std::uint64_t wear_budget = 0;       ///< max tolerated per-page erase count
  std::uint64_t recovery_budget = 0;   ///< cycle bound for dispatch + journal replay
  /// Max tolerated max-min of per-slot worst wear (the leveling bound the
  /// wear_spread monitor enforces; see ota::ModuleStore::wear_spread).
  std::uint64_t wear_spread_budget = 0;
};

struct MonitorResult {
  std::uint8_t id = 0;        ///< registry index (stable within a binary)
  std::string name;
  bool ok = false;
  std::uint64_t value = 0;    ///< the measured quantity the verdict is about
  std::string detail;         ///< human-readable failure context ("" when ok)
};

class MonitorRegistry {
 public:
  using Fn = std::function<MonitorResult(const MonitorContext&)>;

  void add(Fn f) { monitors_.push_back(std::move(f)); }
  [[nodiscard]] std::size_t size() const { return monitors_.size(); }

  /// Run every monitor in order, stamping ids and mirroring each verdict
  /// (and the checkpoint summary) into the tracer when one is attached.
  std::vector<MonitorResult> run(const MonitorContext& ctx, trace::Tracer* tracer,
                                 std::uint16_t epoch) const;

 private:
  std::vector<Fn> monitors_;
};

/// The stock registry: memory-map consistency, jump-table consistency,
/// no-escape, bounded recovery, flash wear, journal old-or-new, supervision
/// sanity, trace-ring accounting, the snapshot-bubble liveness probe,
/// remap-table consistency, and the wear-leveling spread bound.
MonitorRegistry default_monitors();

}  // namespace harbor::soak
