#include "soak/soak.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "asm/builder.h"
#include "avr/ports.h"
#include "ota/image.h"
#include "sos/modules.h"
#include "trace/json.h"

namespace harbor::soak {

namespace {

using namespace harbor::assembler;

/// xorshift64: deterministic, seedable, no std::random state to drag along.
std::uint64_t next_rand(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// The storm module: spins forever on kData (guaranteed watchdog fault),
/// returns cleanly on everything else. Position independent, store free —
/// admissible under both UMPU and the SFI verifier.
sos::ModuleImage spin_module() {
  Assembler a;
  sos::ModuleImage m;
  m.name = "soak_spin";
  m.state_size = 2;
  auto done = a.make_label();
  auto spin = a.make_label();
  a.cpi(r24, sos::msg::kData);
  a.brne(done);
  a.bind(spin);
  a.rjmp(spin);
  a.bind(done);
  a.clr(r24);
  a.clr(r25);
  a.ret();
  m.code = a.assemble().words;
  m.exports = {{sos::ModuleImage::kHandlerSlot, 0}};
  return m;
}

/// OTA churn payload, two distinguishable versions: on kTimer it reports
/// its version marker on the debug-value port.
sos::ModuleImage payload_module(int version) {
  Assembler a;
  sos::ModuleImage m;
  m.name = version == 1 ? "ota_payload_v1" : "ota_payload_v2";
  m.state_size = 2;
  auto done = a.make_label();
  a.cpi(r24, sos::msg::kTimer);
  a.brne(done);
  a.ldi(r18, static_cast<std::uint8_t>(0xB0 + version));
  a.out(avr::ports::kDebugValLo, r18);
  a.bind(done);
  a.clr(r24);
  a.clr(r25);
  a.ret();
  m.code = a.assemble().words;
  m.exports = {{sos::ModuleImage::kHandlerSlot, 0}};
  return m;
}

/// Dispatch until the queue and every supervision backoff drain. A domain
/// backs off at most backoff_cap rounds and every run_pending call advances
/// one round, so `quiet` consecutive empty logs past the cap mean done.
void drain(System& sys, SoakStats& stats) {
  const int cap = sys.kernel().supervisor().backoff_cap;
  int quiet = 0;
  for (int i = 0; i < 20 * (cap + 2) && quiet <= cap + 1; ++i) {
    const auto log = sys.run_pending();
    for (const auto& rec : log)
      stats.max_dispatch_cycles = std::max(stats.max_dispatch_cycles, rec.result.cycles);
    quiet = log.empty() ? quiet + 1 : 0;
  }
}

/// Watchdog → quarantine → revive storm: poison the spin module past its
/// restart budget, dead-letter mail into the quarantine, then revive and
/// prove the dead letters replay cleanly.
void storm(System& sys, SoakStats& stats, std::optional<memmap::DomainId>& d_spin) {
  if (!d_spin) {
    d_spin = sys.load_module(spin_module());
  } else if (sys.kernel().quarantined(*d_spin)) {
    sys.kernel().revive(*d_spin);
    ++stats.revives;
  }
  for (int i = 0; i < 4; ++i) sys.post(*d_spin, sos::msg::kData);
  drain(sys, stats);
  // Mail for a quarantined domain must dead-letter, not vanish.
  sys.post(*d_spin, sos::msg::kTimer);
  sys.post(*d_spin, sos::msg::kTimer);
  if (sys.kernel().quarantined(*d_spin)) {
    ++stats.quarantines;
    sys.kernel().revive(*d_spin);
    ++stats.revives;
  }
  drain(sys, stats);
}

/// One OTA install/recover cycle: alternate payload versions, with a
/// seeded power cut torn through some installs; recovery must always land
/// on old-or-new, after which the committed image is (re)loaded and poked.
void ota_cycle(System& sys, ota::ModuleStore& store, SoakStats& stats,
               std::uint64_t& rng, int epoch, std::optional<memmap::DomainId>& d_ota) {
  const std::vector<std::uint16_t> words =
      ota::serialize_image(payload_module(epoch % 2 == 0 ? 1 : 2));

  if (next_rand(rng) % 5 == 0) {
    // Tear this install at a random flash op; the journal must contain it.
    store.flash().set_cut_at(1 + next_rand(rng) % (words.size() + 64));
    const ota::InstallStatus s = ota::install_image(store, words);
    if (s == ota::InstallStatus::PowerCut || s == ota::InstallStatus::Dead) {
      ++stats.power_cuts;
      store.flash().power_cycle();
    }
    const ota::RecoveryResult r = sys.kernel().recover_store(store);
    stats.last_recover_ops = r.ops;
    if (store.install_open()) store.abort_install();
  }
  store.flash().clear_cut();  // an unfired cut must not tear the next install

  const ota::InstallStatus s = ota::install_image(store, words);
  if (s != ota::InstallStatus::Ok)
    throw std::runtime_error(std::string("soak: ota install failed: ") +
                             ota::install_status_name(s));
  ++stats.ota_installs;
  const ota::RecoveryResult r = sys.kernel().recover_store(store);
  stats.last_recover_ops = r.ops;

  if (d_ota) sys.kernel().unload(*d_ota);
  d_ota = sys.kernel().load_from_store(store, d_ota);
  sys.post(*d_ota, sos::msg::kTimer);
  drain(sys, stats);
}

std::uint64_t sum_counter(trace::Metrics& m, const char* name) {
  std::uint64_t total = 0;
  for (const auto& [key, value] : m.counters())
    if (key.first == name && key.second != trace::Metrics::kNoDomain) total += value;
  // Un-attributed counters (domain -1) are totals of their own; prefer them
  // when per-domain cells are absent.
  if (total == 0) total = m.counter_value(name);
  return total;
}

std::uint32_t max_wear(ota::FlashModel& flash) {
  std::uint32_t worst = 0;
  for (std::uint32_t p = 0; p < flash.pages(); ++p) worst = std::max(worst, flash.wear(p));
  return worst;
}

const char* mode_name_of(ProtectionMode m) {
  switch (m) {
    case ProtectionMode::Umpu: return "umpu";
    case ProtectionMode::Sfi: return "sfi";
    case ProtectionMode::None: return "none";
  }
  return "?";
}

}  // namespace

std::string epoch_record_json(const SoakReport& report, const EpochRecord& rec) {
  namespace json = trace::json;
  std::string out = "{";
  json::Joiner top(out);
  json::kv(out, top, "schema", std::string("soak-report-v1"));
  json::kv(out, top, "mode", report.mode_name);
  json::kv(out, top, "epoch", rec.epoch);
  json::kv(out, top, "sim_hours", rec.sim_hours);
  json::kv(out, top, "checkpoint", rec.checkpoint);
  top.item();
  out += "\"counters\":{";
  {
    json::Joiner c(out);
    for (const auto& [name, value] : rec.counters) json::kv(out, c, name, value);
  }
  out += "},\"monitors\":[";
  {
    json::Joiner ms(out);
    for (const MonitorResult& m : rec.monitors) {
      ms.item();
      out += '{';
      json::Joiner mo(out);
      json::kv(out, mo, "id", static_cast<int>(m.id));
      json::kv(out, mo, "name", m.name);
      json::kv(out, mo, "ok", m.ok);
      json::kv(out, mo, "value", m.value);
      json::kv(out, mo, "detail", m.detail);
      out += '}';
    }
  }
  out += "]}";
  return out;
}

SoakReport run_soak(const SoakConfig& cfg, std::ostream* jsonl) {
  SoakReport rep;
  rep.mode_name = mode_name_of(cfg.mode);

  System sys({cfg.mode});
  trace::TracerOptions topts;
  topts.ring_capacity = cfg.ring_capacity;
  trace::Tracer& tracer = sys.enable_tracing(topts);
  sys.driver().set_cycle_budget(cfg.cycle_budget);
  sos::SupervisorConfig sup;
  sup.auto_restart = true;
  sup.restart_budget = 3;
  sup.backoff_base = 1;
  sup.backoff_cap = 8;
  sys.kernel().set_supervisor(sup);

  SoakStats stats;

  // Resident cast: a victim sentinel that is initialized once and then
  // never dispatched again (the no-escape baseline), the Tree/Surge pair
  // for cross-domain call traffic, and — per epoch — an OTA churn target
  // and the spin-storm module.
  const memmap::DomainId d_victim = sys.load_module(sos::modules::blink());
  const memmap::DomainId d_tree = sys.load_module(sos::modules::tree_routing());
  const memmap::DomainId d_surge = sys.load_module(sos::modules::surge(d_tree, true));
  sys.post(d_victim, sos::msg::kTimer);
  drain(sys, stats);
  const inject::Oracle oracle = inject::Oracle::capture_owned(sys.driver(), d_victim);

  ota::FlashModel flash;
  ota::ModuleStore store(flash, {}, &tracer);

  const int total_epochs = std::max(1, static_cast<int>(std::ceil(cfg.hours)));
  const double hours_per_epoch = cfg.hours > 0 ? cfg.hours / total_epochs : 1.0;
  const auto cycles_per_epoch = static_cast<std::uint64_t>(
      hours_per_epoch * 3600.0 * static_cast<double>(cfg.clock_hz));
  const std::uint64_t wear_budget =
      cfg.flash_wear_budget ? cfg.flash_wear_budget
                            : static_cast<std::uint64_t>(total_epochs) * 2 + 16;

  const MonitorRegistry monitors = default_monitors();
  std::uint64_t rng = cfg.seed ? cfg.seed : 0x9E3779B97F4A7C15ull;
  std::uint64_t skipped = 0;
  std::optional<memmap::DomainId> d_ota, d_spin;
  rep.ok = true;

  trace::CounterTrack tr_uptime{"soak.uptime_sim_hours", {}};
  trace::CounterTrack tr_erases{"soak.flash_total_erases", {}};
  trace::CounterTrack tr_wear{"soak.flash_max_wear", {}};
  trace::CounterTrack tr_drops{"soak.ring_dropped", {}};

  for (int epoch = 0; epoch < total_epochs; ++epoch) {
    // --- epoch activity: traffic, OTA churn, supervision storm ---
    const int bursts = 2 + static_cast<int>(next_rand(rng) % 3);
    for (int i = 0; i < bursts; ++i) {
      sys.post(d_surge, sos::msg::kData);
      sys.post(d_tree, sos::msg::kTimer);
    }
    drain(sys, stats);
    ota_cycle(sys, store, stats, rng, epoch, d_ota);
    if (epoch % 2 == 1) storm(sys, stats, d_spin);

    // --- checkpoint: re-verify invariants from primary state ---
    const bool checkpoint =
        (cfg.checkpoint_every > 0 && (epoch + 1) % cfg.checkpoint_every == 0) ||
        epoch + 1 == total_epochs;
    EpochRecord rec;
    rec.epoch = epoch;
    rec.checkpoint = checkpoint;
    if (checkpoint) {
      MonitorContext ctx{sys,   store, oracle,      d_victim,
                         stats, wear_budget, cfg.cycle_budget};
      rec.monitors = monitors.run(ctx, &tracer, static_cast<std::uint16_t>(epoch));
      ++rep.checkpoints;
      for (const MonitorResult& m : rec.monitors) {
        if (m.ok) continue;
        rep.ok = false;
        if (rep.failure.empty())
          rep.failure = "epoch " + std::to_string(epoch) + ": " + m.name + ": " + m.detail;
      }
    }

    // --- fast-forward the quiescent remainder of the simulated hour ---
    const std::uint64_t executed = sys.cycles();
    const std::uint64_t target =
        static_cast<std::uint64_t>(epoch + 1) * cycles_per_epoch;
    if (executed + skipped < target) skipped = target - executed;
    const double sim_hours = static_cast<double>(executed + skipped) /
                             (3600.0 * static_cast<double>(cfg.clock_hz));
    tracer.soak_epoch(static_cast<std::uint16_t>(epoch),
                      static_cast<std::uint32_t>(sim_hours * 60.0));

    // --- health record ---
    rec.sim_hours = sim_hours;
    trace::Metrics& met = tracer.metrics();
    const auto& ring = tracer.ring();
    rec.counters = {
        {"uptime_cycles", executed + skipped},
        {"executed_cycles", executed},
        {"dispatches", sum_counter(met, trace::metric::kSosDispatches)},
        {"faults", sum_counter(met, trace::metric::kFaults)},
        {"restarts", sum_counter(met, trace::metric::kSosRestarts)},
        {"quarantines", sum_counter(met, trace::metric::kSosQuarantines)},
        {"revives", stats.revives},
        {"ota_installs", stats.ota_installs},
        {"ota_recovers", met.counter_value(trace::metric::kOtaRecovers)},
        {"power_cuts", stats.power_cuts},
        {"flash_total_erases", flash.total_erases()},
        {"flash_max_wear", max_wear(flash)},
        {"ring_accepted", ring.accepted()},
        {"ring_dropped", ring.dropped()},
    };
    const std::uint64_t now = executed;
    tr_uptime.samples.emplace_back(now, sim_hours);
    tr_erases.samples.emplace_back(now, static_cast<double>(flash.total_erases()));
    tr_wear.samples.emplace_back(now, static_cast<double>(max_wear(flash)));
    tr_drops.samples.emplace_back(now, static_cast<double>(ring.dropped()));

    if (jsonl) *jsonl << epoch_record_json(rep, rec) << '\n';
    rep.records.push_back(std::move(rec));
  }

  rep.epochs = total_epochs;
  rep.sim_hours = static_cast<double>(sys.cycles() + skipped) /
                  (3600.0 * static_cast<double>(cfg.clock_hz));
  rep.executed_cycles = sys.cycles();
  rep.skipped_cycles = skipped;
  rep.counter_tracks = {tr_uptime, tr_erases, tr_wear, tr_drops};
  rep.perfetto_trace = trace::perfetto_json(tracer);
  rep.metrics = trace::metrics_json(tracer);
  return rep;
}

}  // namespace harbor::soak
