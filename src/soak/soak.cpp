#include "soak/soak.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "asm/builder.h"
#include "avr/ports.h"
#include "core/prng.h"
#include "ota/image.h"
#include "sos/modules.h"
#include "trace/json.h"

namespace harbor::soak {

namespace {

using namespace harbor::assembler;

/// xorshift64 (core/prng.h): deterministic, seedable, no std::random state
/// to drag along. The historical soak stream — existing seeds replay
/// bit-identically.
std::uint64_t next_rand(std::uint64_t& s) { return core::xorshift64_next(s); }

/// The storm module: spins forever on kData (guaranteed watchdog fault),
/// returns cleanly on everything else. Position independent, store free —
/// admissible under both UMPU and the SFI verifier.
sos::ModuleImage spin_module() {
  Assembler a;
  sos::ModuleImage m;
  m.name = "soak_spin";
  m.state_size = 2;
  auto done = a.make_label();
  auto spin = a.make_label();
  a.cpi(r24, sos::msg::kData);
  a.brne(done);
  a.bind(spin);
  a.rjmp(spin);
  a.bind(done);
  a.clr(r24);
  a.clr(r25);
  a.ret();
  m.code = a.assemble().words;
  m.exports = {{sos::ModuleImage::kHandlerSlot, 0}};
  return m;
}

/// OTA churn payload, two distinguishable versions: on kTimer it reports
/// its version marker on the debug-value port.
sos::ModuleImage payload_module(int version) {
  Assembler a;
  sos::ModuleImage m;
  m.name = version == 1 ? "ota_payload_v1" : "ota_payload_v2";
  m.state_size = 2;
  auto done = a.make_label();
  a.cpi(r24, sos::msg::kTimer);
  a.brne(done);
  a.ldi(r18, static_cast<std::uint8_t>(0xB0 + version));
  a.out(avr::ports::kDebugValLo, r18);
  a.bind(done);
  a.clr(r24);
  a.clr(r25);
  a.ret();
  m.code = a.assemble().words;
  m.exports = {{sos::ModuleImage::kHandlerSlot, 0}};
  return m;
}

/// Dispatch until the queue and every supervision backoff drain. A domain
/// backs off at most backoff_cap rounds and every run_pending call advances
/// one round, so `quiet` consecutive empty logs past the cap mean done.
void drain(System& sys, SoakStats& stats) {
  const int cap = sys.kernel().supervisor().backoff_cap;
  int quiet = 0;
  for (int i = 0; i < 20 * (cap + 2) && quiet <= cap + 1; ++i) {
    const auto log = sys.run_pending();
    for (const auto& rec : log)
      stats.max_dispatch_cycles = std::max(stats.max_dispatch_cycles, rec.result.cycles);
    quiet = log.empty() ? quiet + 1 : 0;
  }
}

/// Watchdog → quarantine → revive storm: poison the spin module past its
/// restart budget, dead-letter mail into the quarantine, then revive and
/// prove the dead letters replay cleanly.
void storm(System& sys, SoakStats& stats, std::optional<memmap::DomainId>& d_spin) {
  if (!d_spin) {
    d_spin = sys.load_module(spin_module());
  } else if (sys.kernel().quarantined(*d_spin)) {
    sys.kernel().revive(*d_spin);
    ++stats.revives;
  }
  for (int i = 0; i < 4; ++i) sys.post(*d_spin, sos::msg::kData);
  drain(sys, stats);
  // Mail for a quarantined domain must dead-letter, not vanish.
  sys.post(*d_spin, sos::msg::kTimer);
  sys.post(*d_spin, sos::msg::kTimer);
  if (sys.kernel().quarantined(*d_spin)) {
    ++stats.quarantines;
    sys.kernel().revive(*d_spin);
    ++stats.revives;
  }
  drain(sys, stats);
}

/// One OTA install/recover cycle: alternate payload versions, with a
/// seeded power cut torn through some installs (`force_cut` makes the tear
/// unconditional — the power-storm windows); recovery must always land on
/// old-or-new. A clean install that the store refuses — worn-out slots, a
/// read-back verify catching stuck bits — is *tolerated*: the previous
/// committed image keeps serving and the failure is counted, which is the
/// whole point of the end-of-life scenarios (DESIGN.md §15).
void ota_cycle(System& sys, ota::ModuleStore& store, SoakStats& stats,
               std::uint64_t& rng, int epoch, std::optional<memmap::DomainId>& d_ota,
               bool force_cut) {
  const std::vector<std::uint16_t> words =
      ota::serialize_image(payload_module(epoch % 2 == 0 ? 1 : 2));

  if (force_cut || next_rand(rng) % 5 == 0) {
    // Tear this install at a random flash op; the journal must contain it.
    store.flash().set_cut_at(1 + next_rand(rng) % (words.size() + 64));
    const ota::InstallStatus s = ota::install_image(store, words);
    if (s == ota::InstallStatus::PowerCut || s == ota::InstallStatus::Dead) {
      ++stats.power_cuts;
      store.flash().power_cycle();
    }
    const ota::RecoveryResult r = sys.kernel().recover_store(store);
    stats.last_recover_ops = r.ops;
    if (store.install_open()) store.abort_install();
  }
  store.flash().clear_cut();  // an unfired cut must not tear the next install

  const ota::InstallStatus s = ota::install_image(store, words);
  if (s != ota::InstallStatus::Ok) {
    ++stats.install_failures;
    if (store.install_open()) store.abort_install();
    const ota::RecoveryResult r = sys.kernel().recover_store(store);
    stats.last_recover_ops = r.ops;
    return;
  }
  ++stats.ota_installs;
  const ota::RecoveryResult r = sys.kernel().recover_store(store);
  stats.last_recover_ops = r.ops;

  if (d_ota) sys.kernel().unload(*d_ota);
  d_ota = sys.kernel().load_from_store(store, d_ota);
  sys.post(*d_ota, sos::msg::kTimer);
  drain(sys, stats);
}

/// One epoch of scenario-shaped activity. Steady keeps the classic mix
/// bit-for-bit (same rng draws in the same order); Aging shares its shape —
/// the aging pressure comes from the flash/store configuration, not the
/// traffic. The fork-the-future pass replays this same function under a
/// diverged rng, so everything it touches must be restorable.
void epoch_activity(SoakScenario sc, System& sys, ota::ModuleStore& store,
                    SoakStats& stats, std::uint64_t& rng, int epoch,
                    memmap::DomainId d_tree, memmap::DomainId d_surge,
                    std::optional<memmap::DomainId>& d_ota,
                    std::optional<memmap::DomainId>& d_spin) {
  switch (sc) {
    case SoakScenario::Steady:
    case SoakScenario::Aging: {
      const int bursts = 2 + static_cast<int>(next_rand(rng) % 3);
      for (int i = 0; i < bursts; ++i) {
        sys.post(d_surge, sos::msg::kData);
        sys.post(d_tree, sos::msg::kTimer);
      }
      drain(sys, stats);
      ota_cycle(sys, store, stats, rng, epoch, d_ota, false);
      if (epoch % 2 == 1) storm(sys, stats, d_spin);
      break;
    }
    case SoakScenario::Bursty: {
      // 4-epoch heavy phases (double OTA churn, 4-8 traffic bursts)
      // alternate with 4-epoch near-idle ones (0-1 bursts, OTA every other
      // epoch) — the duty cycle a duty-cycled sensor node actually sees.
      const bool heavy = (epoch / 4) % 2 == 0;
      const int bursts = heavy ? 4 + static_cast<int>(next_rand(rng) % 4)
                               : static_cast<int>(next_rand(rng) % 2);
      for (int i = 0; i < bursts; ++i) {
        sys.post(d_surge, sos::msg::kData);
        sys.post(d_tree, sos::msg::kTimer);
      }
      drain(sys, stats);
      if (heavy) {
        ota_cycle(sys, store, stats, rng, epoch, d_ota, false);
        ota_cycle(sys, store, stats, rng, epoch + 1, d_ota, false);
      } else if (epoch % 2 == 0) {
        ota_cycle(sys, store, stats, rng, epoch, d_ota, false);
      }
      if (epoch % 2 == 1) storm(sys, stats, d_spin);
      break;
    }
    case SoakScenario::PowerStorm: {
      // Correlated brown-outs: 3-epoch storm windows out of every 8, where
      // every install tears mid-flight and the supervision storm rages
      // alongside the cuts — consecutive epochs, not independent draws.
      const bool window = epoch % 8 < 3;
      const int bursts = 2 + static_cast<int>(next_rand(rng) % 3);
      for (int i = 0; i < bursts; ++i) {
        sys.post(d_surge, sos::msg::kData);
        sys.post(d_tree, sos::msg::kTimer);
      }
      drain(sys, stats);
      ota_cycle(sys, store, stats, rng, epoch, d_ota, window);
      if (window || epoch % 2 == 1) storm(sys, stats, d_spin);
      break;
    }
  }
}

std::uint64_t sum_counter(trace::Metrics& m, const char* name) {
  std::uint64_t total = 0;
  for (const auto& [key, value] : m.counters())
    if (key.first == name && key.second != trace::Metrics::kNoDomain) total += value;
  // Un-attributed counters (domain -1) are totals of their own; prefer them
  // when per-domain cells are absent.
  if (total == 0) total = m.counter_value(name);
  return total;
}

std::uint32_t max_wear(ota::FlashModel& flash) {
  std::uint32_t worst = 0;
  for (std::uint32_t p = 0; p < flash.pages(); ++p) worst = std::max(worst, flash.wear(p));
  return worst;
}

const char* mode_name_of(ProtectionMode m) {
  switch (m) {
    case ProtectionMode::Umpu: return "umpu";
    case ProtectionMode::Sfi: return "sfi";
    case ProtectionMode::None: return "none";
  }
  return "?";
}

}  // namespace

const char* scenario_name_of(SoakScenario s) {
  switch (s) {
    case SoakScenario::Steady: return "steady";
    case SoakScenario::Bursty: return "bursty";
    case SoakScenario::PowerStorm: return "power-storm";
    case SoakScenario::Aging: return "aging";
  }
  return "?";
}

std::string epoch_record_json(const SoakReport& report, const EpochRecord& rec) {
  namespace json = trace::json;
  std::string out = "{";
  json::Joiner top(out);
  json::kv(out, top, "schema", std::string("soak-report-v1"));
  json::kv(out, top, "mode", report.mode_name);
  json::kv(out, top, "scenario", report.scenario_name);
  json::kv(out, top, "epoch", rec.epoch);
  json::kv(out, top, "sim_hours", rec.sim_hours);
  json::kv(out, top, "checkpoint", rec.checkpoint);
  top.item();
  out += "\"counters\":{";
  {
    json::Joiner c(out);
    for (const auto& [name, value] : rec.counters) json::kv(out, c, name, value);
  }
  out += "},\"wear\":{";
  {
    json::Joiner w(out);
    json::kv(out, w, "max", rec.wear.max);
    json::kv(out, w, "spread", rec.wear.spread);
    json::kv(out, w, "spread_budget", rec.wear.spread_budget);
    json::kv(out, w, "pages_bad", rec.wear.pages_bad);
    json::kv(out, w, "remaps", rec.wear.remaps);
    json::kv(out, w, "spares_in_use", rec.wear.spares_in_use);
  }
  out += "},\"monitors\":[";
  {
    json::Joiner ms(out);
    for (const MonitorResult& m : rec.monitors) {
      ms.item();
      out += '{';
      json::Joiner mo(out);
      json::kv(out, mo, "id", static_cast<int>(m.id));
      json::kv(out, mo, "name", m.name);
      json::kv(out, mo, "ok", m.ok);
      json::kv(out, mo, "value", m.value);
      json::kv(out, mo, "detail", m.detail);
      out += '}';
    }
  }
  out += "]}";
  return out;
}

std::string forks_json(const SoakReport& report) {
  namespace json = trace::json;
  std::string out = "{";
  json::Joiner top(out);
  json::kv(out, top, "schema", std::string("soak-forks-v1"));
  json::kv(out, top, "mode", report.mode_name);
  json::kv(out, top, "scenario", report.scenario_name);
  top.item();
  out += "\"forks\":[";
  {
    json::Joiner fs(out);
    for (const ForkRecord& f : report.forks) {
      fs.item();
      out += '{';
      json::Joiner fo(out);
      json::kv(out, fo, "fork", f.fork);
      json::kv(out, fo, "seed", f.seed);
      json::kv(out, fo, "epochs", f.epochs);
      json::kv(out, fo, "monitors_ok", f.monitors_ok);
      json::kv(out, fo, "failure", f.failure);
      json::kv(out, fo, "digest", f.digest);
      fo.item();
      out += "\"counters\":{";
      {
        json::Joiner c(out);
        for (const auto& [name, value] : f.counters) json::kv(out, c, name, value);
      }
      out += "}}";
    }
  }
  out += "]}";
  return out;
}

SoakReport run_soak(const SoakConfig& cfg, std::ostream* jsonl) {
  SoakReport rep;
  rep.mode_name = mode_name_of(cfg.mode);
  rep.scenario_name = scenario_name_of(cfg.scenario);

  System sys({cfg.mode});
  trace::TracerOptions topts;
  topts.ring_capacity = cfg.ring_capacity;
  trace::Tracer& tracer = sys.enable_tracing(topts);
  sys.driver().set_cycle_budget(cfg.cycle_budget);
  sos::SupervisorConfig sup;
  sup.auto_restart = true;
  sup.restart_budget = 3;
  sup.backoff_base = 1;
  sup.backoff_cap = 8;
  sys.kernel().set_supervisor(sup);

  SoakStats stats;

  // Resident cast: a victim sentinel that is initialized once and then
  // never dispatched again (the no-escape baseline), the Tree/Surge pair
  // for cross-domain call traffic, and — per epoch — an OTA churn target
  // and the spin-storm module.
  const memmap::DomainId d_victim = sys.load_module(sos::modules::blink());
  const memmap::DomainId d_tree = sys.load_module(sos::modules::tree_routing());
  const memmap::DomainId d_surge = sys.load_module(sos::modules::surge(d_tree, true));
  sys.post(d_victim, sos::msg::kTimer);
  drain(sys, stats);
  const inject::Oracle oracle = inject::Oracle::capture_owned(sys.driver(), d_victim);

  // Scenario-shaped flash + store: the aging scenario runs a finite-
  // endurance part behind a leveled 4-slot store with a 4-page spare
  // reserve; every other scenario keeps the immortal 2-slot classic.
  ota::FlashConfig fcfg;
  ota::StoreLayout layout;
  std::uint32_t endurance = cfg.flash_endurance;
  if (cfg.scenario == SoakScenario::Aging) {
    if (endurance == 0) endurance = 48;
    layout.journal_pages = 4;
    layout.slots = 4;
    layout.spare_pages = 4;
  }
  fcfg.nominal_endurance = endurance;
  ota::FlashModel flash(fcfg, cfg.seed ? cfg.seed : 1);
  ota::ModuleStore store(flash, layout, &tracer);
  if (cfg.weakened) {
    store.set_wear_leveling(false);
    store.set_remap_enabled(false);
  }

  const int total_epochs = std::max(1, static_cast<int>(std::ceil(cfg.hours)));
  const double hours_per_epoch = cfg.hours > 0 ? cfg.hours / total_epochs : 1.0;
  const auto cycles_per_epoch = static_cast<std::uint64_t>(
      hours_per_epoch * 3600.0 * static_cast<double>(cfg.clock_hz));
  const std::uint64_t wear_budget =
      cfg.flash_wear_budget ? cfg.flash_wear_budget
                            : static_cast<std::uint64_t>(total_epochs) * 2 + 16;
  const std::uint64_t spread_budget =
      cfg.wear_spread_budget ? cfg.wear_spread_budget : 16;

  const MonitorRegistry monitors = default_monitors();
  std::uint64_t rng = cfg.seed ? cfg.seed : 0x9E3779B97F4A7C15ull;
  std::uint64_t skipped = 0;
  std::optional<memmap::DomainId> d_ota, d_spin;
  rep.ok = true;

  trace::CounterTrack tr_uptime{"soak.uptime_sim_hours", {}};
  trace::CounterTrack tr_erases{"soak.flash_total_erases", {}};
  trace::CounterTrack tr_wear{"soak.flash_max_wear", {}};
  trace::CounterTrack tr_drops{"soak.ring_dropped", {}};
  trace::CounterTrack tr_bad{"soak.flash_pages_bad", {}};
  trace::CounterTrack tr_spread{"soak.wear_spread", {}};

  for (int epoch = 0; epoch < total_epochs; ++epoch) {
    // --- epoch activity: traffic, OTA churn, supervision storm ---
    epoch_activity(cfg.scenario, sys, store, stats, rng, epoch, d_tree, d_surge,
                   d_ota, d_spin);

    // --- checkpoint: re-verify invariants from primary state ---
    const bool checkpoint =
        (cfg.checkpoint_every > 0 && (epoch + 1) % cfg.checkpoint_every == 0) ||
        epoch + 1 == total_epochs;
    EpochRecord rec;
    rec.epoch = epoch;
    rec.checkpoint = checkpoint;
    if (checkpoint) {
      MonitorContext ctx{sys,         store,            oracle, d_victim, stats,
                         wear_budget, cfg.cycle_budget, spread_budget};
      rec.monitors = monitors.run(ctx, &tracer, static_cast<std::uint16_t>(epoch));
      ++rep.checkpoints;
      for (const MonitorResult& m : rec.monitors) {
        if (m.ok) continue;
        rep.ok = false;
        if (rep.failure.empty())
          rep.failure = "epoch " + std::to_string(epoch) + ": " + m.name + ": " + m.detail;
      }
    }

    // --- fast-forward the quiescent remainder of the simulated hour ---
    const std::uint64_t executed = sys.cycles();
    const std::uint64_t target =
        static_cast<std::uint64_t>(epoch + 1) * cycles_per_epoch;
    if (executed + skipped < target) skipped = target - executed;
    const double sim_hours = static_cast<double>(executed + skipped) /
                             (3600.0 * static_cast<double>(cfg.clock_hz));
    tracer.soak_epoch(static_cast<std::uint16_t>(epoch),
                      static_cast<std::uint32_t>(sim_hours * 60.0));

    // --- health record ---
    rec.sim_hours = sim_hours;
    trace::Metrics& met = tracer.metrics();
    const auto& ring = tracer.ring();
    rec.counters = {
        {"uptime_cycles", executed + skipped},
        {"executed_cycles", executed},
        {"dispatches", sum_counter(met, trace::metric::kSosDispatches)},
        {"faults", sum_counter(met, trace::metric::kFaults)},
        {"restarts", sum_counter(met, trace::metric::kSosRestarts)},
        {"quarantines", sum_counter(met, trace::metric::kSosQuarantines)},
        {"revives", stats.revives},
        {"ota_installs", stats.ota_installs},
        {"install_failures", stats.install_failures},
        {"ota_recovers", met.counter_value(trace::metric::kOtaRecovers)},
        {"ota_remaps", met.counter_value(trace::metric::kOtaRemaps)},
        {"power_cuts", stats.power_cuts},
        {"flash_total_erases", flash.total_erases()},
        {"flash_max_wear", max_wear(flash)},
        {"flash_pages_bad", flash.pages_bad()},
        {"ring_accepted", ring.accepted()},
        {"ring_dropped", ring.dropped()},
    };
    rec.wear.max = max_wear(flash);
    rec.wear.spread = store.wear_spread();
    rec.wear.spread_budget = spread_budget;
    rec.wear.pages_bad = flash.pages_bad();
    rec.wear.remaps = met.counter_value(trace::metric::kOtaRemaps);
    rec.wear.spares_in_use = store.remaps().size();
    // Gauge semantics: the metric mirrors the latest spread, not a sum.
    met.counter(trace::metric::kOtaWearSpread) = rec.wear.spread;
    const std::uint64_t now = executed;
    tr_uptime.samples.emplace_back(now, sim_hours);
    tr_erases.samples.emplace_back(now, static_cast<double>(flash.total_erases()));
    tr_wear.samples.emplace_back(now, static_cast<double>(max_wear(flash)));
    tr_drops.samples.emplace_back(now, static_cast<double>(ring.dropped()));
    tr_bad.samples.emplace_back(now, static_cast<double>(flash.pages_bad()));
    tr_spread.samples.emplace_back(now, static_cast<double>(rec.wear.spread));

    if (jsonl) *jsonl << epoch_record_json(rep, rec) << '\n';
    rep.records.push_back(std::move(rec));
  }

  rep.epochs = total_epochs;
  rep.sim_hours = static_cast<double>(sys.cycles() + skipped) /
                  (3600.0 * static_cast<double>(cfg.clock_hz));
  rep.executed_cycles = sys.cycles();
  rep.skipped_cycles = skipped;
  rep.counter_tracks = {tr_uptime, tr_erases, tr_wear, tr_drops, tr_bad, tr_spread};
  // Render the main-run artifacts before any forks perturb the tracer.
  rep.perfetto_trace = trace::perfetto_json(tracer);
  rep.metrics = trace::metrics_json(tracer);

  // --- divergent futures: fork the final soaked state (DESIGN.md §15) ---
  // One fork point = device snapshot + kernel host state + a flash copy;
  // each future restores all three, reseeds the activity rng, replays the
  // scenario for a few epochs and re-runs every monitor. The digests
  // witness that the futures actually diverged.
  if (cfg.forks > 0) {
    const int fork_epochs = cfg.fork_epochs > 0 ? cfg.fork_epochs : 2;
    const System::Snapshot dev_snap = sys.snapshot();
    const sos::Kernel::HostState host_snap = sys.kernel().host_state();
    const ota::FlashModel flash_snap = flash;
    const SoakStats stats_snap = stats;
    const std::optional<memmap::DomainId> d_ota_snap = d_ota;
    const std::optional<memmap::DomainId> d_spin_snap = d_spin;
    for (int f = 0; f < cfg.forks; ++f) {
      sys.restore(dev_snap);
      sys.kernel().restore_host_state(host_snap);
      flash = flash_snap;
      // The store re-derives its journal/remap state from the restored
      // cells — the same path a reboot takes, which is the point.
      sys.kernel().recover_store(store);
      stats = stats_snap;
      d_ota = d_ota_snap;
      d_spin = d_spin_snap;
      std::uint64_t frng = rng ^ (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(f + 1));
      if (frng == 0) frng = static_cast<std::uint64_t>(f + 1);

      ForkRecord fr;
      fr.fork = f;
      fr.seed = frng;
      fr.epochs = fork_epochs;
      for (int e = 0; e < fork_epochs; ++e)
        epoch_activity(cfg.scenario, sys, store, stats, frng, total_epochs + e,
                       d_tree, d_surge, d_ota, d_spin);
      MonitorContext ctx{sys,         store,            oracle, d_victim, stats,
                         wear_budget, cfg.cycle_budget, spread_budget};
      const auto results = monitors.run(
          ctx, &tracer, static_cast<std::uint16_t>(total_epochs + fork_epochs));
      fr.monitors_ok = true;
      for (const MonitorResult& m : results) {
        if (m.ok) continue;
        fr.monitors_ok = false;
        if (fr.failure.empty()) fr.failure = m.name + ": " + m.detail;
      }
      if (!fr.monitors_ok) {
        rep.ok = false;
        if (rep.failure.empty())
          rep.failure = "fork " + std::to_string(f) + ": " + fr.failure;
      }

      std::uint64_t digest = 0xcbf29ce484222325ull;  // FNV-1a offset basis
      const auto fold = [&digest](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
          digest ^= (v >> (8 * b)) & 0xFF;
          digest *= 0x100000001B3ull;
        }
      };
      for (std::uint32_t w = 0; w < flash.size_words(); ++w) fold(flash.read_word(w));
      for (std::uint32_t p = 0; p < flash.pages(); ++p) fold(flash.wear(p));
      fold(stats.ota_installs);
      fold(stats.power_cuts);
      fold(sys.cycles());
      fr.digest = digest;
      fr.counters = {
          {"ota_installs", stats.ota_installs},
          {"install_failures", stats.install_failures},
          {"power_cuts", stats.power_cuts},
          {"quarantines", stats.quarantines},
          {"flash_pages_bad", flash.pages_bad()},
          {"flash_max_wear", max_wear(flash)},
      };
      rep.forks.push_back(std::move(fr));
    }
  }
  return rep;
}

}  // namespace harbor::soak
