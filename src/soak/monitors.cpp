#include "soak/monitors.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "asm/builder.h"
#include "memmap/memory_map.h"
#include "ota/image.h"

namespace harbor::soak {

namespace {

MonitorResult pass(const char* name, std::uint64_t value) {
  return {0, name, true, value, ""};
}

MonitorResult fail(const char* name, std::uint64_t value, std::string detail) {
  return {0, name, false, value, std::move(detail)};
}

/// The exact flash word Testbed::set_jt_entry would place at `entry` for
/// `target` — re-assembled, not re-implemented, so the check can never
/// drift from the encoder.
std::uint16_t expected_jt_word(std::uint32_t entry, std::uint32_t target) {
  assembler::Assembler a(entry);
  a.rjmp_abs(target);
  return a.assemble().words.at(0);
}

/// Every untrusted-owned block in the live guest map must belong to a
/// currently loaded domain: an owner code pointing at an empty domain means
/// unload/quarantine leaked a segment (or a wild write forged ownership).
MonitorResult memory_map_monitor(const MonitorContext& ctx) {
  const runtime::Testbed& tb = ctx.sys.kernel().sys();
  const runtime::Layout& L = tb.layout();
  memmap::MemoryMap view(L.memmap_config());
  view.load_table(tb.guest_map_table());
  std::uint64_t owned = 0;
  for (std::uint32_t b = 0; b < view.block_count(); ++b) {
    const memmap::BlockPerm p = view.block(b);
    if (p == memmap::free_block() || p.owner == memmap::kTrustedDomain) continue;
    ++owned;
    if (!ctx.sys.kernel().module(p.owner)) {
      std::ostringstream os;
      os << "block " << b << " (addr 0x" << std::hex << view.addr_of_block(b)
         << ") owned by unloaded domain " << std::dec << static_cast<int>(p.owner);
      return fail("memory_map", b, os.str());
    }
  }
  return pass("memory_map", owned);
}

/// Every untrusted jump-table slot must hold exactly the rjmp the kernel
/// owes it: a loaded module's export target, or the ker_undefined stub.
MonitorResult jump_table_monitor(const MonitorContext& ctx) {
  runtime::Testbed& tb = ctx.sys.driver();
  const runtime::Layout& L = tb.layout();
  const std::uint32_t undef = tb.runtime().symbol("ker_undefined");
  const auto& flash = tb.device().flash();
  std::uint64_t checked = 0;
  for (std::uint8_t d = 0; d < memmap::kTrustedDomain; ++d) {
    const sos::LoadedModule* m = ctx.sys.kernel().module(d);
    for (std::uint32_t s = 0; s < L.jt_entries(); ++s) {
      std::uint32_t target = undef;
      if (m) {
        const auto it = m->export_addr.find(s);
        if (it != m->export_addr.end()) target = it->second;
      }
      const std::uint32_t entry = L.jt_entry(d, s);
      const std::uint16_t want = expected_jt_word(entry, target);
      const std::uint16_t got = flash.read_word(entry);
      ++checked;
      if (got != want) {
        std::ostringstream os;
        os << "jt entry d" << static_cast<int>(d) << " slot " << s << " at 0x" << std::hex
           << entry << ": word 0x" << got << ", expected 0x" << want;
        return fail("jump_table", entry, os.str());
      }
    }
  }
  return pass("jump_table", checked);
}

/// The victim domain is initialized once and never dispatched again; its
/// bytes (and the map bytes guarding them) must match the golden capture.
MonitorResult no_escape_monitor(const MonitorContext& ctx) {
  const auto diff = ctx.victim_oracle.diff(ctx.sys.driver());
  if (!diff.empty()) {
    std::ostringstream os;
    os << diff.size() << " victim byte(s) diverged, first at 0x" << std::hex << diff[0];
    return fail("no_escape", diff.size(), os.str());
  }
  return pass("no_escape", ctx.victim_oracle.protected_bytes());
}

/// Recovery stays bounded: the worst dispatch (crashing ones included —
/// the watchdog kills them at the budget) and the last journal replay both
/// fit the cycle budget. An unbounded replay would show up here long
/// before it hung a real boot.
MonitorResult recovery_bound_monitor(const MonitorContext& ctx) {
  // The watchdog fires once the budget is exceeded; the killing instruction
  // may overshoot by its own length, so allow a small epsilon.
  const std::uint64_t bound = ctx.recovery_budget + 64;
  if (ctx.stats.max_dispatch_cycles > bound) {
    return fail("recovery_bound", ctx.stats.max_dispatch_cycles,
                "dispatch exceeded the cycle budget: " +
                    std::to_string(ctx.stats.max_dispatch_cycles) + " > " +
                    std::to_string(bound));
  }
  const std::uint64_t replay_cycles =
      ctx.stats.last_recover_ops * sos::Kernel::kCyclesPerFlashOp;
  if (replay_cycles > ctx.recovery_budget) {
    return fail("recovery_bound", replay_cycles,
                "journal replay cost " + std::to_string(replay_cycles) +
                    " cycles > budget " + std::to_string(ctx.recovery_budget));
  }
  if (ctx.store.last_recovery().state == ota::StoreState::Watchdog)
    return fail("recovery_bound", ctx.stats.last_recover_ops,
                "store recovery tripped its op budget");
  return pass("recovery_bound", ctx.stats.max_dispatch_cycles);
}

/// No flash page may exceed the erase-wear budget: OTA churn must spread
/// erases across the journal halves and A/B slots, not grind one page.
MonitorResult flash_wear_monitor(const MonitorContext& ctx) {
  ota::FlashModel& flash = ctx.store.flash();
  std::uint32_t worst = 0, worst_page = 0;
  for (std::uint32_t p = 0; p < flash.pages(); ++p) {
    if (flash.wear(p) > worst) {
      worst = flash.wear(p);
      worst_page = p;
    }
  }
  if (worst > ctx.wear_budget) {
    return fail("flash_wear", worst,
                "page " + std::to_string(worst_page) + " at " + std::to_string(worst) +
                    " erases > budget " + std::to_string(ctx.wear_budget));
  }
  return pass("flash_wear", worst);
}

/// Old-or-new: replaying the journal from flash must land on a committed
/// image that still parses, or on Empty while nothing was ever installed.
/// Never Corrupt, never a torn half-state.
MonitorResult journal_monitor(const MonitorContext& ctx) {
  ota::ModuleStore& store = ctx.store;
  const ota::RecoveryResult r = store.recover();
  if (r.state == ota::StoreState::Committed) {
    const auto image = store.committed_image();
    if (!image || !ota::deserialize_image(*image))
      return fail("journal", r.seq, "committed image does not deserialize");
    return pass("journal", r.ops);
  }
  if (r.state == ota::StoreState::Empty && ctx.stats.ota_installs == 0)
    return pass("journal", r.ops);
  return fail("journal", static_cast<std::uint64_t>(r.state),
              std::string("store state '") + ota::store_state_name(r.state) +
                  "' after " + std::to_string(ctx.stats.ota_installs) + " installs");
}

/// Supervision-state sanity: a quarantined domain holds no module, crash
/// streaks respect the restart budget, and no dead letters linger once the
/// storm was revived.
MonitorResult supervision_monitor(const MonitorContext& ctx) {
  const sos::Kernel& k = ctx.sys.kernel();
  const int budget = k.supervisor().restart_budget;
  int worst_streak = 0;
  for (std::uint8_t d = 0; d < memmap::kTrustedDomain; ++d) {
    if (k.quarantined(d) && k.module(d))
      return fail("supervision", d,
                  "domain " + std::to_string(d) + " is quarantined AND loaded");
    const int streak = k.crash_streak(d);
    worst_streak = std::max(worst_streak, streak);
    if (budget >= 0 && streak > budget)
      return fail("supervision", static_cast<std::uint64_t>(streak),
                  "domain " + std::to_string(d) + " crash streak " +
                      std::to_string(streak) + " > budget " + std::to_string(budget));
  }
  if (!k.dead_letters().empty())
    return fail("supervision", k.dead_letters().size(),
                std::to_string(k.dead_letters().size()) +
                    " dead letters at checkpoint (storm not drained)");
  return pass("supervision", static_cast<std::uint64_t>(worst_streak));
}

/// Trace-ring accounting: accepted = retained + dropped, and the
/// per-domain drop attribution sums exactly to the total. A mismatch means
/// the overwrite path lost or double-counted an event.
MonitorResult ring_monitor(const MonitorContext& ctx) {
  const trace::Tracer* t = ctx.sys.tracer();
  if (!t) return pass("ring_accounting", 0);
  const trace::EventRing& ring = t->ring();
  if (ring.accepted() != ring.size() + ring.dropped())
    return fail("ring_accounting", ring.accepted(),
                "accepted " + std::to_string(ring.accepted()) + " != retained " +
                    std::to_string(ring.size()) + " + dropped " +
                    std::to_string(ring.dropped()));
  std::uint64_t per_domain = 0;
  for (std::uint8_t d = 0; d < 8; ++d) per_domain += ring.dropped_in_domain(d);
  if (per_domain != ring.dropped())
    return fail("ring_accounting", per_domain,
                "per-domain drops " + std::to_string(per_domain) + " != total " +
                    std::to_string(ring.dropped()));
  return pass("ring_accounting", ring.dropped());
}

/// Liveness probe inside a snapshot bubble: allocate and free through the
/// full protection machinery, then restore — proving the kernel services
/// still answer after days of churn without perturbing the run (the device
/// resumes cycle-exact; only host-side trace records remain).
MonitorResult liveness_monitor(const MonitorContext& ctx) {
  System& sys = ctx.sys;
  const System::Snapshot snap = sys.snapshot();
  const std::uint64_t cycles_before = sys.cycles();
  // Trusted caller, untrusted owner — a trusted-owned block would encode as
  // free, so the allocator (correctly) refuses owner == kTrustedDomain.
  const runtime::CallResult m =
      sys.driver().malloc(16, memmap::kTrustedDomain, ctx.victim);
  runtime::CallResult f{};
  if (!m.faulted && m.value != 0) f = sys.driver().free(m.value, memmap::kTrustedDomain);
  sys.restore(snap);
  if (sys.cycles() != cycles_before) {
    return fail("liveness_probe", sys.cycles(),
                "restore did not rewind the cycle counter");
  }
  if (m.faulted || m.value == 0)
    return fail("liveness_probe", m.value, "probe ker_malloc failed");
  if (f.faulted || f.value != 0)
    return fail("liveness_probe", f.value, "probe ker_free failed");
  return pass("liveness_probe", m.cycles);
}

/// Remap-table consistency (DESIGN.md §15): every entry maps a data-region
/// logical page to a spare-region physical page, no spare backs two
/// logicals, the table fits the spare budget, and — critically — every
/// referenced spare is still good: a store serving reads through a worn-out
/// spare would hand back stuck bits as module code.
MonitorResult remap_monitor(const MonitorContext& ctx) {
  const ota::ModuleStore& store = ctx.store;
  const auto& remaps = store.remaps();
  const ota::StoreLayout& layout = store.layout();
  if (remaps.size() > layout.spare_pages)
    return fail("remap_table", remaps.size(),
                std::to_string(remaps.size()) + " remaps > " +
                    std::to_string(layout.spare_pages) + " spare pages");
  std::set<std::uint32_t> spares_seen;
  for (const auto& [logical, spare] : remaps) {
    if (logical < store.data_page_begin() || logical >= store.data_page_end())
      return fail("remap_table", logical,
                  "remap key " + std::to_string(logical) + " outside the data region");
    if (spare < store.spare_page_begin() || spare >= store.flash().pages())
      return fail("remap_table", spare,
                  "remap target " + std::to_string(spare) + " outside the spare region");
    if (!spares_seen.insert(spare).second)
      return fail("remap_table", spare,
                  "spare " + std::to_string(spare) + " backs two logical pages");
    if (store.flash().bad(spare))
      return fail("remap_table", spare,
                  "referenced spare " + std::to_string(spare) + " is past end-of-life");
  }
  return pass("remap_table", remaps.size());
}

/// Wear-leveling bound (DESIGN.md §15): the max-min of per-slot worst erase
/// wear must stay within the leveling budget. A degraded store (leveling
/// off) ping-pongs two slots while the rest stay cold, so this is the
/// monitor the --weakened self-test must fail.
MonitorResult wear_spread_monitor(const MonitorContext& ctx) {
  const std::uint32_t spread = ctx.store.wear_spread();
  if (spread > ctx.wear_spread_budget)
    return fail("wear_spread", spread,
                "slot wear spread " + std::to_string(spread) + " > leveling budget " +
                    std::to_string(ctx.wear_spread_budget));
  return pass("wear_spread", spread);
}

}  // namespace

std::vector<MonitorResult> MonitorRegistry::run(const MonitorContext& ctx,
                                                trace::Tracer* tracer,
                                                std::uint16_t epoch) const {
  std::vector<MonitorResult> out;
  out.reserve(monitors_.size());
  std::uint8_t failures = 0;
  for (std::size_t i = 0; i < monitors_.size(); ++i) {
    MonitorResult r = monitors_[i](ctx);
    r.id = static_cast<std::uint8_t>(i);
    if (!r.ok) ++failures;
    if (tracer) tracer->soak_monitor(r.id, r.ok, static_cast<std::uint32_t>(r.value));
    out.push_back(std::move(r));
  }
  if (tracer)
    tracer->soak_checkpoint(epoch, static_cast<std::uint32_t>(monitors_.size()), failures);
  return out;
}

MonitorRegistry default_monitors() {
  MonitorRegistry reg;
  reg.add(memory_map_monitor);
  reg.add(jump_table_monitor);
  reg.add(no_escape_monitor);
  reg.add(recovery_bound_monitor);
  reg.add(flash_wear_monitor);
  reg.add(journal_monitor);
  reg.add(supervision_monitor);
  reg.add(ring_monitor);
  reg.add(liveness_monitor);
  reg.add(remap_monitor);
  reg.add(wear_spread_monitor);
  return reg;
}

}  // namespace harbor::soak
