#pragma once
// Broadcast radio for the fleet simulator (DESIGN.md §16).
//
// The point-to-point transfer protocol runs over two ota::LossyLink
// directions; the fleet generalizes that to a shared medium: a topology
// (line, grid, or random) defines each node's neighbourhood, and every
// *directed edge* owns its own LossyLink whose fault process (drop,
// duplicate, corrupt) is seeded per-edge from the fleet master seed — two
// runs with the same seed replay bit-identically, and distinct edges fault
// independently. Delivery latency is drawn per-frame from a per-edge
// seeded stream; unequal latencies are what reorder broadcasts in flight
// (LossyLink's own one-slot reorder never triggers here because the radio
// drains each link per send, so its probability is left at zero and the
// jittered latency supplies reordering instead).
//
// A partition cuts every edge crossing the node-id midpoint; healed edges
// resume with their fault streams intact.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/prng.h"
#include "ota/link.h"

namespace harbor::fleet {

enum class Topology : std::uint8_t { Line, Grid, Random };

const char* topology_name(Topology t);

struct RadioConfig {
  Topology topology = Topology::Grid;
  std::uint32_t nodes = 16;
  /// Random topology only: extra random peers per node on top of the ring
  /// that guarantees connectivity.
  std::uint32_t degree = 4;
  double drop = 0.0;
  double duplicate = 0.0;
  double corrupt = 0.0;
  std::uint32_t latency_min_ticks = 1;
  std::uint32_t latency_jitter_ticks = 3;
  std::uint64_t master_seed = 1;
};

struct RadioCounters {
  std::uint64_t frames_sent = 0;       ///< broadcast calls
  std::uint64_t frames_delivered = 0;  ///< per-edge deliveries that came out
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t partition_blocked = 0;
};

class Radio {
 public:
  explicit Radio(const RadioConfig& cfg);

  /// Broadcast `f` from `src` to every neighbour. Each copy that survives
  /// the edge's fault process is handed to `deliver(dst, frame, at_tick)`
  /// with its own jittered arrival time; the caller (the simulator) queues
  /// it as a Deliver event.
  using DeliverFn =
      std::function<void(std::uint32_t dst, ota::Frame frame, std::uint64_t at)>;
  void broadcast(std::uint32_t src, const ota::Frame& f, std::uint64_t now,
                 const DeliverFn& deliver);

  /// Cut every edge whose endpoints straddle node id `nodes/2`.
  void set_partitioned(bool on) { partitioned_ = on; }
  [[nodiscard]] bool partitioned() const { return partitioned_; }

  [[nodiscard]] const std::vector<std::uint32_t>& neighbours(std::uint32_t n) const {
    return adj_[n];
  }
  [[nodiscard]] const RadioCounters& counters() const { return counters_; }
  [[nodiscard]] std::uint32_t nodes() const { return cfg_.nodes; }

 private:
  struct Edge {
    std::uint32_t dst = 0;
    ota::LossyLink link;
    core::Prng latency_rng{1};
  };

  void add_undirected(std::uint32_t a, std::uint32_t b);
  void build_topology();

  RadioConfig cfg_;
  bool partitioned_ = false;
  std::vector<std::vector<std::uint32_t>> adj_;   ///< neighbour ids per node
  std::vector<std::vector<Edge>> edges_;          ///< directed out-edges per node
  RadioCounters counters_;
};

}  // namespace harbor::fleet
