#pragma once
// Fleet-scale OTA dissemination simulator (DESIGN.md §16).
//
// A discrete-event harness over N Nodes sharing one broadcast Radio: a
// priority queue ordered by (tick, insertion sequence) carries frame
// deliveries, node timer wakeups, and campaign events (version injection,
// churn deaths/revivals, partition cut/heal, periodic checkpoints). Every
// decision — radio faults, Trickle jitter, retry backoff, power-cut
// placement, churn schedule — derives from the single master seed, so a
// campaign replays bit-identically and the end-state digest is comparable
// across runs and platforms.
//
// The fleet monitor registry asserts the dissemination guarantees at the
// end of a campaign:
//   convergence     every live node reached the newest version in bounded time
//   old-or-new      no recovery ever surfaced a torn image, fleet-wide
//   no-regression   no node's committed version ever decreased (incl. heal)
//   accounting      every node alive again at the end (churn all revived)
//   journal-resume  power cuts actually exercised resume-from-journal
//   dispatch        full-fidelity nodes ran every installed update clean
//
// Checkpoints stream fleet-report-v1 JSONL records (validated by
// tools/validate_trace.py --fleet) and feed the per-node Perfetto timeline.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "fleet/node.h"
#include "fleet/radio.h"
#include "trace/export.h"

namespace harbor::fleet {

struct FleetConfig {
  std::uint32_t nodes = 16;
  Topology topology = Topology::Grid;
  std::uint32_t degree = 4;       ///< random topology: extra peers per node
  double loss = 0.0;              ///< per-link drop probability
  double duplicate = 0.02;
  double corrupt = 0.01;
  double cut_prob = 0.0;          ///< power-cut arming probability per install
  double churn = 0.0;             ///< fraction of the fleet killed + revived
  bool partition = false;         ///< cut the fleet in half around injection
  ProtectionMode mode = ProtectionMode::Umpu;
  /// Every full_every-th node is full-fidelity (owns a harbor::System and
  /// dispatch-verifies every install); 0 disables full-fidelity nodes.
  std::uint32_t full_every = 8;
  std::uint64_t master_seed = 1;
  std::uint32_t image_pad_words = 64;  ///< extra on-air words in the update
  std::uint16_t base_version = 1;
  std::uint16_t update_version = 2;
  std::uint64_t inject_tick = 64;      ///< when the origin learns the update
  std::uint64_t partition_ticks = 6000;  ///< heal = inject + partition_ticks
  std::uint64_t churn_down_ticks = 3000;
  std::uint64_t checkpoint_every = 512;
  std::uint64_t max_ticks = 1u << 21;
  NodeConfig node{};  ///< per-node protocol tuning (id/seed/mode overwritten)
};

enum class FleetMonitorId : std::uint8_t {
  Convergence,
  OldOrNew,
  NoRegression,
  Accounting,
  JournalResume,
  Dispatch,
};

struct FleetMonitorResult {
  FleetMonitorId id{};
  std::string name;
  bool ok = true;
  std::uint64_t value = 0;
  std::string detail;
};

struct FleetTotals {
  std::uint64_t adverts = 0;
  std::uint64_t reqs = 0;
  std::uint64_t chunks_served = 0;
  std::uint64_t chunks_staged = 0;
  std::uint64_t installs = 0;
  std::uint64_t resumes = 0;
  std::uint64_t fetch_aborts = 0;
  std::uint64_t power_cuts = 0;
  std::uint64_t reboots = 0;
  std::uint64_t deaths = 0;        ///< churn kills
  std::uint64_t torn = 0;
  std::uint64_t regressions = 0;
  std::uint64_t dispatch_checks = 0;
  std::uint64_t dispatch_failures = 0;
};

struct FleetResult {
  bool converged = false;
  std::uint64_t converged_tick = 0;
  std::uint64_t end_tick = 0;
  std::uint16_t newest_version = 0;
  std::uint64_t digest = 0;  ///< FNV-1a over every node's end state
  FleetTotals totals;
  RadioCounters radio;
  std::vector<FleetMonitorResult> monitors;
  std::uint64_t events_processed = 0;
  [[nodiscard]] bool ok() const {
    for (const FleetMonitorResult& m : monitors)
      if (!m.ok) return false;
    return true;
  }
};

class FleetSim {
 public:
  explicit FleetSim(const FleetConfig& cfg);

  /// Run the campaign to convergence (or max_ticks). `jsonl`, when set,
  /// receives one fleet-report-v1 line per checkpoint (no trailing \n).
  using JsonlSink = std::function<void(const std::string& line)>;
  FleetResult run(const JsonlSink& jsonl = nullptr);

  /// Per-node tracks + fleet convergence counters, populated by run().
  [[nodiscard]] const trace::MultiTrackTimeline& timeline() const { return timeline_; }
  [[nodiscard]] const FleetConfig& config() const { return cfg_; }
  [[nodiscard]] const Node& node(std::uint32_t i) const { return *nodes_[i]; }

 private:
  enum class EventKind : std::uint8_t {
    Deliver, Wake, Inject, Kill, Revive, PartitionOn, PartitionOff, Checkpoint,
  };
  struct Event {
    std::uint64_t at = 0;
    std::uint64_t seq = 0;  ///< insertion order: deterministic tie-break
    EventKind kind = EventKind::Wake;
    std::uint32_t node = 0;
    ota::Frame frame;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  void push(std::uint64_t at, EventKind kind, std::uint32_t node = 0,
            ota::Frame frame = {});
  void reschedule_wake(std::uint32_t n, std::uint64_t now);
  void broadcast_all(std::uint32_t src, const std::vector<ota::Frame>& tx,
                     std::uint64_t now);
  void schedule_campaign();
  [[nodiscard]] std::uint32_t count_at_newest() const;
  [[nodiscard]] std::uint32_t count_live() const;
  void emit_checkpoint(std::uint64_t now, const JsonlSink& jsonl);
  void finish(FleetResult& res, std::uint64_t now);

  FleetConfig cfg_;
  Radio radio_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::uint16_t> update_image_;
  std::uint16_t newest_version_ = 0;

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::uint64_t seq_ = 0;
  std::vector<std::uint64_t> next_wake_;
  std::uint64_t pending_revives_ = 0;
  std::uint64_t deaths_ = 0;
  bool converged_ = false;
  std::uint64_t converged_tick_ = 0;

  trace::MultiTrackTimeline timeline_;
  std::vector<std::uint64_t> fetch_started_;  ///< per-node, for fetch slices
  std::vector<std::uint16_t> last_version_;   ///< per-node, for commit instants
  std::vector<bool> was_down_;
};

}  // namespace harbor::fleet
