#include "fleet/node.h"

#include <algorithm>
#include <charconv>

#include "ota/crc32.h"
#include "ota/frame.h"
#include "ota/image.h"

namespace harbor::fleet {

namespace {

constexpr std::uint64_t kTagNodeRng = 0xF1EE7;
constexpr std::uint64_t kTagFlash = 0xF1A5;

constexpr char kUpdateNamePrefix[] = "fleet-v";

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

std::vector<std::uint16_t> make_update_image(std::uint16_t ver,
                                             std::uint32_t pad_words) {
  sos::ModuleImage m = sos::modules::blink();
  m.name = kUpdateNamePrefix + std::to_string(ver);
  // Trailing nops are never reached (exports point into the original code)
  // but make the on-air image as large as the campaign wants it.
  m.code.insert(m.code.end(), pad_words, 0x0000);
  return ota::serialize_image(m);
}

std::uint16_t image_version(std::span<const std::uint16_t> words) {
  const std::optional<sos::ModuleImage> m = ota::deserialize_image(words);
  if (!m) return 0;
  const std::string& n = m->name;
  const std::size_t plen = sizeof(kUpdateNamePrefix) - 1;
  if (n.size() <= plen || n.compare(0, plen, kUpdateNamePrefix) != 0) return 0;
  std::uint16_t v = 0;
  const auto [ptr, ec] = std::from_chars(n.data() + plen, n.data() + n.size(), v);
  return ec == std::errc{} && ptr == n.data() + n.size() ? v : 0;
}

Node::Node(const NodeConfig& cfg)
    : cfg_(cfg),
      rng_(core::derive(cfg.master_seed, kTagNodeRng, cfg.id)),
      flash_(cfg.flash, core::derive(cfg.master_seed, kTagFlash, cfg.id)),
      store_(std::make_unique<ota::ModuleStore>(flash_)),
      trickle_(cfg.trickle) {
  if (cfg_.full_fidelity) sys_ = std::make_unique<System>(SystemConfig{cfg_.mode});
  trickle_.reset(0, rng_);
}

void Node::seed_image(std::uint64_t now, std::span<const std::uint16_t> image) {
  const ota::InstallStatus s = ota::install_image(*store_, image);
  if (s != ota::InstallStatus::Ok) return;  // provisioning is cut-free
  abort_fetch();
  refresh_cache();
  set_version(image_version(cache_));
  trickle_.reset(now, rng_);
  verify_install();
}

ota::Frame Node::make_adv() const {
  ota::Frame f{kFrameAdv};
  ota::push_u16(f, version_);
  ota::push_u32(f, static_cast<std::uint32_t>(cache_.size()));
  ota::push_u32(f, cache_.empty() ? 0 : ota::crc32_words(cache_));
  ota::seal_frame(f);
  return f;
}

bool Node::died(ota::InstallStatus s, std::uint64_t now) {
  if (s != ota::InstallStatus::PowerCut && s != ota::InstallStatus::Dead)
    return false;
  ++stats_.power_cuts;
  down_ = true;
  reboot_at_ = now + cfg_.reboot_delay_ticks;
  fetch_.reset();
  return true;
}

void Node::abort_fetch() {
  if (store_->install_open()) store_->abort_install();
  fetch_.reset();
}

void Node::start_fetch(std::uint64_t now, std::uint16_t ver, std::uint32_t words,
                       std::uint32_t crc, std::vector<ota::Frame>& tx) {
  if (fetch_) {
    if (fetch_->ver >= ver) return;  // already fetching this (or newer)
    abort_fetch();                   // a newer version obsoletes the fetch
  }
  if (words == 0) return;

  // Power-cut fault injection: with cut_prob, arm a cut at a uniformly
  // random flash-op boundary somewhere inside this install's expected op
  // span — journal append, slot erase, staging program, or commit record.
  if (cfg_.cut_prob > 0 && rng_.chance(cfg_.cut_prob)) {
    const std::uint64_t est_ops =
        words + words / std::max(1u, cfg_.flash.page_words) + 32;
    flash_.set_cut_at(flash_.ops() + 1 + rng_.below(est_ops));
  }

  Fetch fetch;
  fetch.ver = ver;
  fetch.words_total = words;
  fetch.crc = crc;

  const std::optional<ota::PendingInstall>& p = store_->pending();
  if (p && p->erased && p->crc == crc && p->words_total == words) {
    // recover() reconstructed a matching half-staged install: resume from
    // the journal's durable high-water mark instead of re-fetching.
    fetch.expected = p->words_staged;
    ++stats_.resumes;
  } else {
    if (store_->install_open()) {
      if (died(store_->abort_install(), now)) return;
    }
    const ota::InstallStatus s = store_->begin_install(words, crc);
    if (died(s, now)) return;
    if (s != ota::InstallStatus::Ok) return;  // e.g. NoSpace: stay put
  }
  fetch_ = fetch;
  send_req(now, tx);
}

void Node::send_req(std::uint64_t now, std::vector<ota::Frame>& tx) {
  ota::Frame f{kFrameReq};
  ota::push_u16(f, fetch_->ver);
  ota::push_u32(f, fetch_->expected);
  ota::seal_frame(f);
  tx.push_back(std::move(f));
  ++stats_.reqs_sent;
  fetch_->deadline = now + cfg_.req_timeout_ticks;
}

void Node::on_adv(std::uint64_t now, const ota::Frame& f,
                  std::vector<ota::Frame>& tx) {
  if (!ota::frame_crc_ok(f, 11)) return;
  const std::uint16_t ver = ota::get_u16(f, 1);
  if (ver == version_) {
    trickle_.on_consistent();
    return;
  }
  trickle_.on_inconsistent(now, rng_);
  if (ver > version_)
    start_fetch(now, ver, ota::get_u32(f, 3), ota::get_u32(f, 7), tx);
}

void Node::on_req(std::uint64_t now, const ota::Frame& f,
                  std::vector<ota::Frame>& tx) {
  if (!ota::frame_crc_ok(f, 7)) return;
  const std::uint16_t ver = ota::get_u16(f, 1);
  if (ver > version_) {
    // Someone is fetching a version newer than ours: that's news too.
    trickle_.on_inconsistent(now, rng_);
    return;
  }
  if (ver != version_ || cache_.empty()) return;
  const std::uint32_t offset = ota::get_u32(f, 3);
  if (offset >= cache_.size()) return;
  const std::uint32_t n = std::min<std::uint32_t>(
      cfg_.chunk_words, static_cast<std::uint32_t>(cache_.size()) - offset);
  ota::Frame chunk{kFrameChunk};
  ota::push_u16(chunk, ver);
  ota::push_u32(chunk, offset);
  for (std::uint32_t i = 0; i < n; ++i) ota::push_u16(chunk, cache_[offset + i]);
  ota::seal_frame(chunk);
  tx.push_back(std::move(chunk));
  ++stats_.chunks_served;
}

void Node::on_chunk(std::uint64_t now, const ota::Frame& f,
                    std::vector<ota::Frame>& tx) {
  if (!ota::frame_crc_ok(f, 7)) return;
  if (!fetch_) return;
  const std::uint16_t ver = ota::get_u16(f, 1);
  const std::uint32_t offset = ota::get_u32(f, 3);
  if (ver != fetch_->ver) return;
  const std::size_t payload_bytes = f.size() - 7 - 4;
  if (payload_bytes == 0 || payload_bytes % 2 != 0) return;
  const auto nwords = static_cast<std::uint32_t>(payload_bytes / 2);
  if (offset + nwords > fetch_->words_total) return;
  if (offset + nwords <= fetch_->expected) return;  // stale duplicate
  if (offset != fetch_->expected) return;           // future chunk: re-REQ later

  std::vector<std::uint16_t> words(nwords);
  for (std::uint32_t i = 0; i < nwords; ++i) words[i] = ota::get_u16(f, 7 + 2 * i);
  ota::InstallStatus s = store_->stage_words(offset, words);
  if (died(s, now)) return;
  if (s != ota::InstallStatus::Ok) {
    ++stats_.fetch_aborts;
    abort_fetch();
    return;
  }
  fetch_->expected += nwords;
  ++stats_.chunks_staged;
  if (++fetch_->chunks_since_progress >= cfg_.progress_every_chunks &&
      fetch_->expected < fetch_->words_total) {
    s = store_->note_progress(fetch_->expected);
    if (died(s, now)) return;
    fetch_->chunks_since_progress = 0;
  }
  if (fetch_->expected < fetch_->words_total) {
    fetch_->attempts = 0;
    send_req(now, tx);
    return;
  }
  // Whole image staged: two-phase commit, then bring the update live.
  s = store_->commit();
  if (died(s, now)) return;
  const std::uint16_t got = fetch_->ver;
  fetch_.reset();
  if (s != ota::InstallStatus::Ok) return;  // CrcMismatch: wait for re-ADV
  ++stats_.installs;
  refresh_cache();
  set_version(got);
  trickle_.reset(now, rng_);
  verify_install();
}

void Node::on_frame(std::uint64_t now, const ota::Frame& f,
                    std::vector<ota::Frame>& tx) {
  if (down_ || f.empty()) return;
  switch (f[0]) {
    case kFrameAdv: on_adv(now, f, tx); break;
    case kFrameReq: on_req(now, f, tx); break;
    case kFrameChunk: on_chunk(now, f, tx); break;
    default: break;  // unknown/corrupted type byte
  }
}

void Node::on_wake(std::uint64_t now, std::vector<ota::Frame>& tx) {
  if (down_) {
    if (reboot_at_ != kNever && now >= reboot_at_) reboot(now);
    return;
  }
  if (fetch_ && now >= fetch_->deadline) {
    // REQ timed out: retry with capped exponential backoff plus seeded
    // equal-jitter, same shape as ota::Sender — a neighbourhood of nodes
    // that lost the same chunk won't re-request in lockstep.
    ++fetch_->attempts;
    if (fetch_->attempts >= cfg_.req_max_attempts) {
      ++stats_.fetch_aborts;
      abort_fetch();
    } else {
      const std::uint32_t shift = std::min(fetch_->attempts - 1, 16u);
      std::uint32_t backoff = std::min(cfg_.req_backoff_base_ticks << shift,
                                       cfg_.req_backoff_cap_ticks);
      const std::uint32_t span =
          backoff * std::min(cfg_.backoff_jitter_pct, 100u) / 100;
      if (span) backoff = backoff - span + static_cast<std::uint32_t>(
                                               rng_.below(span + 1));
      send_req(now, tx);
      fetch_->deadline += backoff;
    }
  }
  while (now >= trickle_.deadline()) {
    if (trickle_.fire(now, rng_)) {
      tx.push_back(make_adv());
      ++stats_.adverts_sent;
    }
  }
}

void Node::kill(std::uint64_t now) {
  (void)now;
  down_ = true;
  reboot_at_ = kNever;  // the campaign revives us explicitly
  fetch_.reset();
}

void Node::revive(std::uint64_t now) {
  if (down_ && reboot_at_ == kNever) reboot(now);
}

void Node::reboot(std::uint64_t now) {
  down_ = false;
  reboot_at_ = kNever;
  flash_.power_cycle();
  ++stats_.reboots;
  const ota::RecoveryResult r =
      sys_ ? sys_->kernel().recover_store(*store_) : store_->recover();
  switch (r.state) {
    case ota::StoreState::Committed:
      refresh_cache();
      set_version(image_version(cache_));
      verify_install();
      break;
    case ota::StoreState::Empty:
      cache_.clear();
      version_ = 0;
      break;
    case ota::StoreState::Corrupt:
    case ota::StoreState::Watchdog:
      // Torn image visible after recovery: the old-or-new guarantee failed.
      ++stats_.torn;
      cache_.clear();
      version_ = 0;
      break;
  }
  trickle_.reset(now, rng_);
}

void Node::set_version(std::uint16_t v) {
  if (v < version_) ++stats_.regressions;
  version_ = v;
}

void Node::refresh_cache() {
  const std::optional<std::vector<std::uint16_t>> img = store_->committed_image();
  cache_ = img ? *img : std::vector<std::uint16_t>{};
}

void Node::verify_install() {
  if (!sys_ || !store_->has_committed()) return;
  ++stats_.dispatch_checks;
  try {
    if (domain_) sys_->kernel().unload(*domain_);
    domain_ = sys_->kernel().load_from_store(*store_, domain_);
    sys_->post(*domain_, sos::msg::kTimer);
    const std::vector<sos::DispatchRecord> recs = sys_->run_pending();
    if (recs.empty() || recs.back().result.faulted) ++stats_.dispatch_failures;
  } catch (const std::exception&) {
    ++stats_.dispatch_failures;
    domain_.reset();
  }
}

std::uint64_t Node::deadline() const {
  if (down_) return reboot_at_;
  std::uint64_t d = trickle_.deadline();
  if (fetch_ && fetch_->deadline < d) d = fetch_->deadline;
  return d;
}

std::uint64_t Node::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, version_);
  h = fnv1a(h, cache_.empty() ? 0 : ota::crc32_words(cache_));
  h = fnv1a(h, down_ ? 1 : 0);
  h = fnv1a(h, stats_.installs);
  h = fnv1a(h, stats_.resumes);
  h = fnv1a(h, stats_.power_cuts);
  h = fnv1a(h, stats_.reboots);
  h = fnv1a(h, stats_.adverts_sent);
  h = fnv1a(h, stats_.reqs_sent);
  h = fnv1a(h, static_cast<std::uint64_t>(stats_.chunks_served) << 32 |
                   stats_.chunks_staged);
  return h;
}

}  // namespace harbor::fleet
