#pragma once
// Trickle timer (RFC 6206 shape) for fleet-wide version advertisement
// (DESIGN.md §16).
//
// Each node advertises its committed image version at a self-clocked,
// suppressed rate: within every interval I it picks a random point
// t ∈ [I/2, I) and transmits there only if it heard fewer than k consistent
// advertisements so far; at the interval's end I doubles (up to
// Imin << max_doublings). Hearing an *inconsistent* advertisement — any
// neighbour on a different version — resets I to Imin, so news floods a
// quiet fleet in O(log N) intervals while a converged fleet idles at the
// maximum interval with ~k transmissions per neighbourhood per interval.
//
// The timer is a pure state machine over caller-supplied time and
// randomness: the fleet simulator owns the clock and the per-node seeded
// PRNG, which keeps every run bit-reproducible.

#include <cstdint>

#include "core/prng.h"

namespace harbor::fleet {

struct TrickleConfig {
  std::uint32_t imin_ticks = 8;      ///< smallest interval
  std::uint32_t max_doublings = 6;   ///< Imax = imin << max_doublings
  std::uint32_t redundancy_k = 2;    ///< suppress when >= k consistent heard
};

class Trickle {
 public:
  explicit Trickle(TrickleConfig cfg = {}) : cfg_(cfg) {}

  /// (Re)start at the smallest interval — boot, reboot, or inconsistency.
  void reset(std::uint64_t now, core::Prng& rng) {
    interval_ = cfg_.imin_ticks;
    begin_interval(now, rng);
  }

  /// A neighbour advertised the same version we hold.
  void on_consistent() { ++heard_; }

  /// A neighbour disagreed (older or newer): drop back to Imin unless we
  /// are already there (RFC 6206 §4.2 step 6 — avoids reset storms).
  void on_inconsistent(std::uint64_t now, core::Prng& rng) {
    if (interval_ != cfg_.imin_ticks) reset(now, rng);
  }

  /// Next time the timer needs service (transmit point or interval end).
  [[nodiscard]] std::uint64_t deadline() const { return deadline_; }

  /// Service the timer at its deadline. Returns true exactly when the
  /// caller should transmit an advertisement now (the mid-interval point
  /// fired with fewer than k consistent advertisements heard).
  bool fire(std::uint64_t now, core::Prng& rng) {
    if (phase_ == Phase::BeforeT) {
      phase_ = Phase::AfterT;
      deadline_ = interval_end_;
      return heard_ < cfg_.redundancy_k;
    }
    // Interval expired: double (capped) and start the next one.
    const std::uint32_t imax = cfg_.imin_ticks << cfg_.max_doublings;
    interval_ = interval_ < imax ? interval_ * 2 : imax;
    begin_interval(now, rng);
    return false;
  }

  [[nodiscard]] std::uint32_t interval() const { return interval_; }
  [[nodiscard]] std::uint32_t heard() const { return heard_; }

 private:
  enum class Phase : std::uint8_t { BeforeT, AfterT };

  void begin_interval(std::uint64_t now, core::Prng& rng) {
    heard_ = 0;
    phase_ = Phase::BeforeT;
    interval_end_ = now + interval_;
    // t uniform in [I/2, I).
    const std::uint32_t half = interval_ / 2;
    deadline_ = now + half + rng.below(interval_ - half);
  }

  TrickleConfig cfg_;
  std::uint32_t interval_ = 8;
  std::uint32_t heard_ = 0;
  Phase phase_ = Phase::BeforeT;
  std::uint64_t deadline_ = 0;
  std::uint64_t interval_end_ = 0;
};

}  // namespace harbor::fleet
