#include "fleet/radio.h"

#include <algorithm>
#include <cmath>

namespace harbor::fleet {

namespace {

/// Seed-stream tags: every per-edge stream derives from
/// (master, tag, src * nodes + dst) so streams never collide across uses.
constexpr std::uint64_t kTagLink = 0x11A0;
constexpr std::uint64_t kTagLatency = 0x11A1;
constexpr std::uint64_t kTagWire = 0x11A2;  ///< random-topology wiring

}  // namespace

const char* topology_name(Topology t) {
  switch (t) {
    case Topology::Line: return "line";
    case Topology::Grid: return "grid";
    case Topology::Random: return "random";
  }
  return "?";
}

Radio::Radio(const RadioConfig& cfg) : cfg_(cfg) {
  adj_.resize(cfg_.nodes);
  edges_.resize(cfg_.nodes);
  build_topology();
}

void Radio::add_undirected(std::uint32_t a, std::uint32_t b) {
  if (a == b || a >= cfg_.nodes || b >= cfg_.nodes) return;
  if (std::find(adj_[a].begin(), adj_[a].end(), b) != adj_[a].end()) return;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  const ota::LinkFaults faults{cfg_.drop, cfg_.duplicate, /*reorder=*/0.0,
                               cfg_.corrupt};
  const auto n = static_cast<std::uint64_t>(cfg_.nodes);
  for (const auto& [src, dst] : {std::pair{a, b}, std::pair{b, a}}) {
    Edge e;
    e.dst = dst;
    const std::uint64_t id = static_cast<std::uint64_t>(src) * n + dst;
    e.link = ota::LossyLink(faults, core::derive(cfg_.master_seed, kTagLink, id));
    e.latency_rng = core::Prng(core::derive(cfg_.master_seed, kTagLatency, id));
    edges_[src].push_back(std::move(e));
  }
}

void Radio::build_topology() {
  const std::uint32_t n = cfg_.nodes;
  switch (cfg_.topology) {
    case Topology::Line:
      for (std::uint32_t i = 0; i + 1 < n; ++i) add_undirected(i, i + 1);
      break;
    case Topology::Grid: {
      const auto side = static_cast<std::uint32_t>(
          std::ceil(std::sqrt(static_cast<double>(n))));
      for (std::uint32_t i = 0; i < n; ++i) {
        if ((i % side) + 1 < side) add_undirected(i, i + 1);
        if (i + side < n) add_undirected(i, i + side);
      }
      break;
    }
    case Topology::Random: {
      // Ring first so the graph is always connected, then `degree` random
      // extra peers per node (dedup'd by add_undirected).
      for (std::uint32_t i = 0; i < n; ++i) add_undirected(i, (i + 1) % n);
      core::Prng wire(core::derive(cfg_.master_seed, kTagWire));
      for (std::uint32_t i = 0; i < n; ++i)
        for (std::uint32_t d = 0; d < cfg_.degree; ++d)
          add_undirected(i, static_cast<std::uint32_t>(wire.below(n)));
      break;
    }
  }
}

void Radio::broadcast(std::uint32_t src, const ota::Frame& f, std::uint64_t now,
                      const DeliverFn& deliver) {
  ++counters_.frames_sent;
  const std::uint32_t cut = cfg_.nodes / 2;
  for (Edge& e : edges_[src]) {
    if (partitioned_ && (src < cut) != (e.dst < cut)) {
      ++counters_.partition_blocked;
      continue;
    }
    const ota::LinkCounters before = e.link.counters();
    e.link.send(f);
    for (ota::Frame& out : e.link.drain()) {
      ++counters_.frames_delivered;
      const std::uint64_t at = now + cfg_.latency_min_ticks +
                               e.latency_rng.below(cfg_.latency_jitter_ticks + 1);
      deliver(e.dst, std::move(out), at);
    }
    const ota::LinkCounters& after = e.link.counters();
    counters_.frames_dropped += after.dropped - before.dropped;
    counters_.frames_corrupted += after.corrupted - before.corrupted;
    counters_.frames_duplicated += after.duplicated - before.duplicated;
  }
}

}  // namespace harbor::fleet
