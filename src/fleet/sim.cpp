#include "fleet/sim.h"

#include <algorithm>
#include <numeric>

#include "ota/crc32.h"
#include "trace/json.h"

namespace harbor::fleet {

namespace {

constexpr std::uint64_t kTagChurn = 0xC08A;

const char* mode_str(ProtectionMode m) {
  switch (m) {
    case ProtectionMode::None: return "none";
    case ProtectionMode::Sfi: return "sfi";
    case ProtectionMode::Umpu: return "umpu";
  }
  return "?";
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

FleetSim::FleetSim(const FleetConfig& cfg)
    : cfg_(cfg),
      radio_([&] {
        RadioConfig r;
        r.topology = cfg.topology;
        r.nodes = cfg.nodes;
        r.degree = cfg.degree;
        r.drop = cfg.loss;
        r.duplicate = cfg.duplicate;
        r.corrupt = cfg.corrupt;
        r.master_seed = cfg.master_seed;
        return r;
      }()) {
  update_image_ = make_update_image(cfg_.update_version, cfg_.image_pad_words);
  nodes_.reserve(cfg_.nodes);
  for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
    NodeConfig nc = cfg_.node;
    nc.id = i;
    nc.master_seed = cfg_.master_seed;
    nc.mode = cfg_.mode;
    nc.cut_prob = cfg_.cut_prob;
    nc.full_fidelity = cfg_.full_every != 0 && i % cfg_.full_every == 0;
    nodes_.push_back(std::make_unique<Node>(nc));
  }
  next_wake_.assign(cfg_.nodes, 0);
  fetch_started_.assign(cfg_.nodes, 0);
  last_version_.assign(cfg_.nodes, 0);
  was_down_.assign(cfg_.nodes, false);
}

void FleetSim::push(std::uint64_t at, EventKind kind, std::uint32_t node,
                    ota::Frame frame) {
  queue_.push(Event{at, seq_++, kind, node, std::move(frame)});
}

void FleetSim::reschedule_wake(std::uint32_t n, std::uint64_t now) {
  const std::uint64_t d = nodes_[n]->deadline();
  if (d == kNever) return;
  // A stale earlier wake self-corrects (on_wake re-checks deadlines and we
  // reschedule after it); only push when no useful wake is in flight.
  if (next_wake_[n] <= now || d < next_wake_[n]) {
    push(d, EventKind::Wake, n);
    next_wake_[n] = d;
  }
}

void FleetSim::broadcast_all(std::uint32_t src, const std::vector<ota::Frame>& tx,
                             std::uint64_t now) {
  for (const ota::Frame& f : tx)
    radio_.broadcast(src, f, now,
                     [&](std::uint32_t dst, ota::Frame frame, std::uint64_t at) {
                       push(at, EventKind::Deliver, dst, std::move(frame));
                     });
}

void FleetSim::schedule_campaign() {
  push(cfg_.inject_tick, EventKind::Inject, 0);
  if (cfg_.partition) {
    push(std::max<std::uint64_t>(1, cfg_.inject_tick / 2), EventKind::PartitionOn);
    push(cfg_.inject_tick + cfg_.partition_ticks, EventKind::PartitionOff);
  }
  if (cfg_.churn > 0) {
    // Pick churn*N distinct victims via partial Fisher-Yates; each dies at
    // a seeded random point after injection and revives churn_down_ticks
    // later. The origin is eligible too — its copy is flash-durable, so a
    // churned origin only delays the epidemic, never kills it.
    core::Prng churn_rng(core::derive(cfg_.master_seed, kTagChurn));
    std::vector<std::uint32_t> ids(cfg_.nodes);
    std::iota(ids.begin(), ids.end(), 0);
    const auto k = std::min<std::uint32_t>(
        cfg_.nodes, static_cast<std::uint32_t>(cfg_.churn * cfg_.nodes + 0.5));
    for (std::uint32_t i = 0; i < k; ++i) {
      const auto j = i + static_cast<std::uint32_t>(churn_rng.below(cfg_.nodes - i));
      std::swap(ids[i], ids[j]);
      const std::uint64_t die =
          cfg_.inject_tick + 1 + churn_rng.below(cfg_.churn_down_ticks);
      push(die, EventKind::Kill, ids[i]);
      push(die + cfg_.churn_down_ticks, EventKind::Revive, ids[i]);
      ++pending_revives_;
    }
  }
  push(cfg_.checkpoint_every, EventKind::Checkpoint);
}

std::uint32_t FleetSim::count_at_newest() const {
  std::uint32_t n = 0;
  for (const auto& node : nodes_)
    if (node->alive() && node->version() == newest_version_) ++n;
  return n;
}

std::uint32_t FleetSim::count_live() const {
  std::uint32_t n = 0;
  for (const auto& node : nodes_)
    if (node->alive()) ++n;
  return n;
}

void FleetSim::emit_checkpoint(std::uint64_t now, const JsonlSink& jsonl) {
  const std::uint32_t live = count_live();
  const std::uint32_t at_newest = count_at_newest();
  timeline_.counters[0].samples.emplace_back(now, at_newest);
  timeline_.counters[1].samples.emplace_back(now, live);
  timeline_.counters[2].samples.emplace_back(now, newest_version_);
  if (!jsonl) return;

  FleetTotals t;
  for (const auto& node : nodes_) {
    const NodeStats& s = node->stats();
    t.adverts += s.adverts_sent;
    t.reqs += s.reqs_sent;
    t.chunks_served += s.chunks_served;
    t.chunks_staged += s.chunks_staged;
    t.installs += s.installs;
    t.resumes += s.resumes;
    t.fetch_aborts += s.fetch_aborts;
    t.power_cuts += s.power_cuts;
    t.reboots += s.reboots;
    t.torn += s.torn;
    t.regressions += s.regressions;
  }
  const RadioCounters& r = radio_.counters();
  std::string out;
  trace::json::Joiner top(out);
  out += '{';
  trace::json::kv(out, top, "schema", std::string("fleet-report-v1"));
  trace::json::kv(out, top, "mode", std::string(mode_str(cfg_.mode)));
  trace::json::kv(out, top, "topology", std::string(topology_name(cfg_.topology)));
  trace::json::kv(out, top, "tick", now);
  trace::json::kv(out, top, "nodes", static_cast<std::uint64_t>(cfg_.nodes));
  trace::json::kv(out, top, "live", static_cast<std::uint64_t>(live));
  trace::json::kv(out, top, "converged", static_cast<std::uint64_t>(at_newest));
  trace::json::kv(out, top, "newest_version",
                  static_cast<std::uint64_t>(newest_version_));
  top.item();
  out += "\"versions\":[";
  {
    trace::json::Joiner vs(out);
    for (const auto& node : nodes_) {
      vs.item();
      out += std::to_string(node->version());
    }
  }
  out += ']';
  top.item();
  out += "\"counters\":{";
  {
    trace::json::Joiner c(out);
    trace::json::kv(out, c, "frames_sent", r.frames_sent);
    trace::json::kv(out, c, "frames_delivered", r.frames_delivered);
    trace::json::kv(out, c, "frames_dropped", r.frames_dropped);
    trace::json::kv(out, c, "frames_corrupted", r.frames_corrupted);
    trace::json::kv(out, c, "frames_duplicated", r.frames_duplicated);
    trace::json::kv(out, c, "partition_blocked", r.partition_blocked);
    trace::json::kv(out, c, "adverts", t.adverts);
    trace::json::kv(out, c, "reqs", t.reqs);
    trace::json::kv(out, c, "chunks_served", t.chunks_served);
    trace::json::kv(out, c, "chunks_staged", t.chunks_staged);
    trace::json::kv(out, c, "installs", t.installs);
    trace::json::kv(out, c, "resumes", t.resumes);
    trace::json::kv(out, c, "fetch_aborts", t.fetch_aborts);
    trace::json::kv(out, c, "power_cuts", t.power_cuts);
    trace::json::kv(out, c, "reboots", t.reboots);
    trace::json::kv(out, c, "deaths", deaths_);
  }
  out += '}';
  top.item();
  out += "\"violations\":{";
  {
    trace::json::Joiner v(out);
    trace::json::kv(out, v, "old_or_new", t.torn);
    trace::json::kv(out, v, "regression", t.regressions);
  }
  out += "}}";
  jsonl(out);
}

FleetResult FleetSim::run(const JsonlSink& jsonl) {
  FleetResult res;

  timeline_.process_name = "harbor fleet";
  for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
    std::string name = "node " + std::to_string(i);
    if (nodes_[i]->config().full_fidelity) name += " (full)";
    timeline_.tracks.push_back(std::move(name));
  }
  timeline_.tracks.push_back("fleet campaign");
  const std::uint32_t campaign_track = cfg_.nodes;
  timeline_.counters = {{"fleet/converged", {}}, {"fleet/live", {}},
                        {"fleet/newest_version", {}}};

  // Factory provisioning: every node starts committed at the base version.
  const std::vector<std::uint16_t> base =
      make_update_image(cfg_.base_version, 0);
  newest_version_ = cfg_.base_version;
  for (std::uint32_t i = 0; i < cfg_.nodes; ++i) {
    nodes_[i]->seed_image(0, base);
    last_version_[i] = nodes_[i]->version();
    reschedule_wake(i, 0);
  }
  schedule_campaign();

  // Tracks per-node transitions (fetch slices, commit/power instants) after
  // every event touching node n.
  const auto observe = [&](std::uint32_t n, std::uint64_t now) {
    Node& node = *nodes_[n];
    if (node.fetching() && fetch_started_[n] == 0) {
      fetch_started_[n] = now ? now : 1;
    } else if (!node.fetching() && fetch_started_[n] != 0) {
      timeline_.slices.push_back(
          {n, "fetch v" + std::to_string(node.version()), fetch_started_[n],
           now - fetch_started_[n]});
      fetch_started_[n] = 0;
    }
    if (node.version() != last_version_[n]) {
      timeline_.instants.push_back(
          {n, "commit v" + std::to_string(node.version()), now});
      last_version_[n] = node.version();
    }
    if (!node.alive() && !was_down_[n]) {
      timeline_.instants.push_back({n, "power-off", now});
      was_down_[n] = true;
    } else if (node.alive() && was_down_[n]) {
      timeline_.instants.push_back({n, "boot", now});
      was_down_[n] = false;
    }
  };

  std::uint64_t now = 0;
  std::vector<ota::Frame> tx;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.at > cfg_.max_ticks) break;
    now = ev.at;
    ++res.events_processed;
    tx.clear();
    switch (ev.kind) {
      case EventKind::Deliver:
        nodes_[ev.node]->on_frame(now, ev.frame, tx);
        break;
      case EventKind::Wake:
        nodes_[ev.node]->on_wake(now, tx);
        break;
      case EventKind::Inject:
        nodes_[ev.node]->seed_image(now, update_image_);
        newest_version_ = cfg_.update_version;
        timeline_.instants.push_back(
            {campaign_track, "inject v" + std::to_string(cfg_.update_version),
             now});
        break;
      case EventKind::Kill:
        if (nodes_[ev.node]->alive()) {
          nodes_[ev.node]->kill(now);
          ++deaths_;
        }
        break;
      case EventKind::Revive:
        nodes_[ev.node]->revive(now);
        --pending_revives_;
        break;
      case EventKind::PartitionOn:
        radio_.set_partitioned(true);
        timeline_.instants.push_back({campaign_track, "partition", now});
        break;
      case EventKind::PartitionOff:
        radio_.set_partitioned(false);
        timeline_.instants.push_back({campaign_track, "heal", now});
        break;
      case EventKind::Checkpoint: {
        emit_checkpoint(now, jsonl);
        const bool all_home = pending_revives_ == 0 && count_live() == cfg_.nodes;
        bool fetching = false;
        for (const auto& node : nodes_)
          if (node->fetching()) fetching = true;
        if (all_home && !fetching && count_at_newest() == cfg_.nodes) {
          converged_ = true;
          converged_tick_ = now;
        } else if (now + cfg_.checkpoint_every <= cfg_.max_ticks) {
          push(now + cfg_.checkpoint_every, EventKind::Checkpoint);
        }
        break;
      }
    }
    if (ev.kind == EventKind::Deliver || ev.kind == EventKind::Wake ||
        ev.kind == EventKind::Inject || ev.kind == EventKind::Kill ||
        ev.kind == EventKind::Revive) {
      broadcast_all(ev.node, tx, now);
      observe(ev.node, now);
      reschedule_wake(ev.node, now);
    }
    if (converged_) break;
  }

  finish(res, now);
  return res;
}

void FleetSim::finish(FleetResult& res, std::uint64_t now) {
  res.converged = converged_;
  res.converged_tick = converged_tick_;
  res.end_tick = now;
  res.newest_version = newest_version_;
  res.radio = radio_.counters();

  FleetTotals& t = res.totals;
  bool any_full = false;
  std::uint64_t digest = 0xcbf29ce484222325ull;
  for (const auto& node : nodes_) {
    const NodeStats& s = node->stats();
    t.adverts += s.adverts_sent;
    t.reqs += s.reqs_sent;
    t.chunks_served += s.chunks_served;
    t.chunks_staged += s.chunks_staged;
    t.installs += s.installs;
    t.resumes += s.resumes;
    t.fetch_aborts += s.fetch_aborts;
    t.power_cuts += s.power_cuts;
    t.reboots += s.reboots;
    t.torn += s.torn;
    t.regressions += s.regressions;
    t.dispatch_checks += s.dispatch_checks;
    t.dispatch_failures += s.dispatch_failures;
    any_full = any_full || node->config().full_fidelity;
    digest = fnv1a(digest, node->digest());
  }
  t.deaths = deaths_;
  digest = fnv1a(digest, res.radio.frames_delivered);
  digest = fnv1a(digest, res.radio.frames_dropped);
  res.digest = digest;

  const auto monitor = [&](FleetMonitorId id, const char* name, bool ok,
                           std::uint64_t value, std::string detail) {
    res.monitors.push_back({id, name, ok, value, std::move(detail)});
  };
  monitor(FleetMonitorId::Convergence, "convergence", converged_,
          converged_tick_,
          converged_ ? "all nodes at v" + std::to_string(newest_version_)
                     : "fleet did not converge by tick " + std::to_string(now));
  monitor(FleetMonitorId::OldOrNew, "old-or-new", t.torn == 0, t.torn,
          t.torn == 0 ? "no torn image surfaced at any recovery"
                      : "torn images recovered fleet-wide");
  monitor(FleetMonitorId::NoRegression, "no-regression", t.regressions == 0,
          t.regressions,
          t.regressions == 0 ? "no node's version ever decreased"
                             : "version regressions observed");
  monitor(FleetMonitorId::Accounting, "accounting",
          pending_revives_ == 0 && count_live() == cfg_.nodes, count_live(),
          "live nodes at end of campaign");
  monitor(FleetMonitorId::JournalResume, "journal-resume",
          t.power_cuts == 0 || t.resumes > 0, t.resumes,
          t.power_cuts == 0
              ? "no power cuts struck (vacuous)"
              : std::to_string(t.power_cuts) + " cuts, " +
                    std::to_string(t.resumes) + " journal resumes");
  monitor(FleetMonitorId::Dispatch, "dispatch",
          t.dispatch_failures == 0 && (!any_full || t.dispatch_checks > 0),
          t.dispatch_checks,
          "full-fidelity installs dispatch-verified, " +
              std::to_string(t.dispatch_failures) + " failures");
}

}  // namespace harbor::fleet
