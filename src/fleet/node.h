#pragma once
// One simulated fleet node (DESIGN.md §16).
//
// Every node owns a real FlashModel + transactional ModuleStore — the same
// durable-install machinery the single-node OTA stack uses — plus the fleet
// dissemination protocol state: a Trickle advertisement timer and a
// receiver-driven chunk fetch with seeded equal-jitter retry backoff.
// Full-fidelity nodes additionally own a complete harbor::System and, after
// every commit and reboot-recovery, load the committed image through the
// kernel's store path and dispatch a message into it — proving the update
// that epidemically arrived over the radio actually runs under the selected
// protection mode. Proxy nodes stop at the store (flash-durability and
// protocol behaviour are identical; only the CPU simulation is elided),
// which is what lets a 256-node fleet run in seconds.
//
// Frames (little-endian words, trailing CRC32 via ota/frame.h; corrupt
// frames are dropped silently like any radio CRC failure):
//   ADV   [0x61][ver u16][image words u32][image crc u32][crc]
//   REQ   [0x62][ver u16][offset u32][crc]
//   CHUNK [0x63][ver u16][offset u32][payload words...][crc]
//
// Version identity lives *inside* the image: fleet update images are real
// serialized modules named "fleet-v<N>", so a rebooted node re-derives its
// version from the committed bytes alone — no RAM state survives a cut.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/harbor.h"
#include "core/prng.h"
#include "fleet/trickle.h"
#include "ota/flash_model.h"
#include "ota/link.h"
#include "ota/store.h"

namespace harbor::fleet {

inline constexpr std::uint8_t kFrameAdv = 0x61;
inline constexpr std::uint8_t kFrameReq = 0x62;
inline constexpr std::uint8_t kFrameChunk = 0x63;

inline constexpr std::uint64_t kNever = ~0ull;

/// Build the version-`ver` fleet update image: sos::modules::blink() named
/// "fleet-v<ver>", padded with trailing nops to `pad_words` extra code words
/// so dissemination cost is configurable. Returns the serialized words.
std::vector<std::uint16_t> make_update_image(std::uint16_t ver,
                                             std::uint32_t pad_words = 0);

/// Parse the version out of a committed serialized image ("fleet-v<N>"),
/// or 0 when the image is not a fleet update.
std::uint16_t image_version(std::span<const std::uint16_t> words);

struct NodeConfig {
  std::uint32_t id = 0;
  bool full_fidelity = false;
  ProtectionMode mode = ProtectionMode::Umpu;
  std::uint64_t master_seed = 1;
  TrickleConfig trickle{};
  ota::FlashConfig flash{};  ///< per-node store geometry (defaults suffice)
  std::uint32_t chunk_words = 16;
  std::uint32_t req_timeout_ticks = 12;
  std::uint32_t req_backoff_base_ticks = 4;
  std::uint32_t req_backoff_cap_ticks = 64;
  std::uint32_t req_max_attempts = 10;
  std::uint32_t backoff_jitter_pct = 50;
  std::uint32_t progress_every_chunks = 4;
  std::uint32_t reboot_delay_ticks = 48;
  /// Probability that an install arms a power cut at a random flash-op
  /// boundary inside its expected op span.
  double cut_prob = 0.0;
};

struct NodeStats {
  std::uint32_t adverts_sent = 0;
  std::uint32_t reqs_sent = 0;
  std::uint32_t chunks_served = 0;
  std::uint32_t chunks_staged = 0;
  std::uint32_t installs = 0;        ///< commits (factory seed excluded)
  std::uint32_t resumes = 0;         ///< fetches resumed from a journal high-water mark
  std::uint32_t fetch_aborts = 0;
  std::uint32_t power_cuts = 0;
  std::uint32_t reboots = 0;         ///< recoveries (power cut or churn revival)
  std::uint32_t torn = 0;            ///< old-or-new violations seen at recovery
  std::uint32_t regressions = 0;     ///< version ever decreased (never expected)
  std::uint32_t dispatch_checks = 0;     ///< full-fidelity post-install dispatches
  std::uint32_t dispatch_failures = 0;   ///< ...that faulted or misbehaved
};

class Node {
 public:
  explicit Node(const NodeConfig& cfg);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Factory provisioning: install `image` directly (no radio, no cuts)
  /// and start the Trickle timer. Also used by the campaign to inject a
  /// new version at the origin node.
  void seed_image(std::uint64_t now, std::span<const std::uint16_t> image);

  /// A frame arrived from the radio. Any responses go into `tx` for the
  /// simulator to broadcast.
  void on_frame(std::uint64_t now, const ota::Frame& f, std::vector<ota::Frame>& tx);

  /// The simulator woke us at deadline(): service Trickle / fetch retry /
  /// reboot, emitting any frames into `tx`.
  void on_wake(std::uint64_t now, std::vector<ota::Frame>& tx);

  /// Churn: clean power-down (no torn flash op) until revive().
  void kill(std::uint64_t now);
  /// Churn revival: power the node back up through the recovery path.
  void revive(std::uint64_t now);

  [[nodiscard]] std::uint64_t deadline() const;
  [[nodiscard]] bool alive() const { return !down_; }
  [[nodiscard]] std::uint16_t version() const { return version_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  [[nodiscard]] const NodeConfig& config() const { return cfg_; }
  [[nodiscard]] ota::ModuleStore& store() { return *store_; }
  [[nodiscard]] bool fetching() const { return fetch_.has_value(); }
  /// FNV-1a over version + committed image CRC + key counters — the
  /// per-node contribution to the fleet determinism digest.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  struct Fetch {
    std::uint16_t ver = 0;
    std::uint32_t words_total = 0;
    std::uint32_t crc = 0;
    std::uint32_t expected = 0;  ///< next offset to stage
    std::uint32_t attempts = 0;  ///< REQ sends for the current offset
    std::uint32_t chunks_since_progress = 0;
    std::uint64_t deadline = kNever;
  };

  void start_fetch(std::uint64_t now, std::uint16_t ver, std::uint32_t words,
                   std::uint32_t crc, std::vector<ota::Frame>& tx);
  void send_req(std::uint64_t now, std::vector<ota::Frame>& tx);
  void abort_fetch();
  void on_adv(std::uint64_t now, const ota::Frame& f, std::vector<ota::Frame>& tx);
  void on_req(std::uint64_t now, const ota::Frame& f, std::vector<ota::Frame>& tx);
  void on_chunk(std::uint64_t now, const ota::Frame& f, std::vector<ota::Frame>& tx);
  ota::Frame make_adv() const;
  /// True when `s` powered the node off (PowerCut/Dead): records the cut
  /// and schedules the reboot.
  bool died(ota::InstallStatus s, std::uint64_t now);
  void reboot(std::uint64_t now);
  void set_version(std::uint16_t v);
  void refresh_cache();
  void verify_install();

  NodeConfig cfg_;
  core::Prng rng_;
  ota::FlashModel flash_;
  std::unique_ptr<ota::ModuleStore> store_;
  std::unique_ptr<System> sys_;  ///< full-fidelity only
  std::optional<memmap::DomainId> domain_;

  Trickle trickle_;
  std::optional<Fetch> fetch_;
  std::uint16_t version_ = 0;
  std::vector<std::uint16_t> cache_;  ///< committed image (chunk server)

  bool down_ = false;
  std::uint64_t reboot_at_ = kNever;  ///< kNever while down from churn
  NodeStats stats_;
};

}  // namespace harbor::fleet
